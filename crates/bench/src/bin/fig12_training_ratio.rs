//! Fig. 12 — F-scores vs. the ratio of data used for training (10–90 %),
//! with the number of labelled samples fixed at 4 per floor. Every model
//! improves with more (unlabelled) training data.

use grafics_bench::{
    fleets, mean_report, print_summaries, run_fleet_custom, write_json, Algo, ExperimentConfig,
};

fn main() {
    let cfg = ExperimentConfig::from_args();
    let ratios = [0.1, 0.3, 0.5, 0.7, 0.9];
    let algos = Algo::comparison_set();
    let mut all = Vec::new();
    for (fleet_name, fleet) in fleets(&cfg) {
        for &ratio in &ratios {
            let results = run_fleet_custom(&fleet, &algos, &cfg, None, &move |ds, cfg, rng| {
                let split = ds.split(ratio, rng).ok()?;
                let train = split.train.with_label_budget(cfg.labels_per_floor, rng);
                Some((train, split.test))
            });
            let summaries = mean_report(&results);
            print_summaries(
                &format!("{fleet_name}, training ratio {:.0}%", ratio * 100.0),
                &summaries,
            );
            all.push(serde_json::json!({
                "fleet": fleet_name,
                "train_ratio": ratio,
                "summaries": summaries,
            }));
        }
    }
    write_json("fig12_training_ratio.json", &all);
}
