//! Fig. 14 — bipartite graph + E-LINE vs the raw matrix representation
//! (−120 dBm fill) used directly with the proximity clustering. The matrix
//! bars collapse, demonstrating the missing-value problem.

use grafics_bench::{
    fleets, mean_report, print_summaries, run_fleet, write_json, Algo, ExperimentConfig,
};

fn main() {
    let cfg = ExperimentConfig::from_args();
    let algos = [Algo::Grafics, Algo::MatrixProx];
    let mut all = Vec::new();
    for (fleet_name, fleet) in fleets(&cfg) {
        let results = run_fleet(&fleet, &algos, &cfg, None);
        let summaries = mean_report(&results);
        print_summaries(&format!("{fleet_name} (graph vs matrix)"), &summaries);
        all.push(serde_json::json!({ "fleet": fleet_name, "summaries": summaries }));
    }
    write_json("fig14_graph_vs_matrix.json", &all);
}
