//! Extension experiment (motivated by §III-A, not quantified in the
//! paper): robustness to *environment drift* between offline training and
//! online inference. A model is trained on a building's corpus; the AP
//! deployment then drifts — one scenario-engine epoch of
//! [`Event::ApChurn`] plus a step [`Event::SignalDrift`], the same typed
//! events the `scenario_smoke` timelines replay — and accuracy is
//! measured on scans from the drifted deployment. GRAFICS's dynamic graph
//! absorbs new MACs online; we also report the effect of decommissioning
//! the removed MACs from the graph (`prune_removed_macs`) versus leaving
//! them stale.

use grafics_bench::{write_json, ExperimentConfig};
use grafics_core::{Grafics, GraficsConfig};
use grafics_data::BuildingModel;
use grafics_metrics::ConfusionMatrix;
use grafics_scenario::{prune_removed_macs, Event, ScenarioWorld, Schedule};
use grafics_types::{FloorId, MacAddr};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let severities = [0.0, 0.1, 0.2, 0.3, 0.5];
    let mut all = Vec::new();
    println!(
        "{:>9} {:>14} {:>14}",
        "drift", "stale-graph F", "pruned-graph F"
    );
    for &severity in &severities {
        let (mut stale_sum, mut pruned_sum, mut n) = (0.0, 0.0, 0);
        for run in 0..cfg.runs {
            let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed + run as u64);
            let building =
                BuildingModel::office("drift", 5).with_records_per_floor(cfg.records_per_floor);
            let floors = building.floors;
            let mut world = ScenarioWorld::from_models(vec![building], &mut rng);
            let corpus = world
                .model(0)
                .simulate_with_layout(world.layout(0), &mut rng)
                .filter_rare_macs(2)
                .with_label_budget(cfg.labels_per_floor, &mut rng);
            let Ok(model) = Grafics::train(&corpus, &GraficsConfig::default(), &mut rng) else {
                continue;
            };

            // Drift the world: one renovation-style scenario epoch.
            let changes = world.apply_epoch(
                &[
                    Event::ApChurn {
                        replace_frac: severity,
                        add_frac: severity,
                    },
                    Event::SignalDrift {
                        power_jitter_db: 1.0,
                        schedule: Schedule::Step,
                    },
                ],
                1,
                &mut rng,
            );
            let removed: Vec<MacAddr> = changes.removed.iter().map(|&(_, mac)| mac).collect();

            // Variant A: stale graph (removed APs still present as nodes).
            let mut stale = model.clone();
            // Variant B: pruned graph (decommissioned APs removed, except
            // where removal would strand a record).
            let mut pruned = model;
            prune_removed_macs(&mut pruned, &removed);

            let mut cm_stale = ConfusionMatrix::new();
            let mut cm_pruned = ConfusionMatrix::new();
            for i in 0..200 {
                let floor = (i % floors as usize) as i16;
                let Some(scan) = world.model(0).scan(world.layout(0), floor, &mut rng) else {
                    continue;
                };
                if let Ok(p) = stale.infer(&scan, &mut rng) {
                    cm_stale.observe(FloorId(floor), p.floor);
                }
                if let Ok(p) = pruned.infer(&scan, &mut rng) {
                    cm_pruned.observe(FloorId(floor), p.floor);
                }
            }
            stale_sum += cm_stale.report().micro_f;
            pruned_sum += cm_pruned.report().micro_f;
            n += 1;
        }
        let (stale, pruned) = (stale_sum / n as f64, pruned_sum / n as f64);
        println!("{severity:>9.2} {stale:>14.3} {pruned:>14.3}");
        all.push(serde_json::json!({
            "severity": severity,
            "stale_micro_f": stale,
            "pruned_micro_f": pruned,
        }));
    }
    write_json("extension_drift.json", &all);
}
