//! Accuracy ablation of the online-embedding budget: SGD samples per
//! incident edge when a new record is embedded with all other embeddings
//! frozen (§V-A). Too few samples leave the new node near its random
//! init; the default (200) is on the flat part of the curve.

use grafics_bench::{fleets, mean_report, run_fleet, write_json, Algo, ExperimentConfig};
use grafics_core::GraficsConfig;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let budgets = [5usize, 25, 50, 100, 200, 400];
    let mut all = Vec::new();
    for (fleet_name, fleet) in fleets(&cfg) {
        println!("\n== {fleet_name} ==");
        println!("{:>8} {:>9} {:>9}", "samples", "micro-F", "macro-F");
        for &online_samples_per_edge in &budgets {
            let over = GraficsConfig {
                online_samples_per_edge,
                ..Default::default()
            };
            let results = run_fleet(&fleet, &[Algo::Grafics], &cfg, Some(over));
            let s = &mean_report(&results)[0];
            println!(
                "{online_samples_per_edge:>8} {:>9.3} {:>9.3}",
                s.micro.2, s.macro_.2
            );
            all.push(serde_json::json!({
                "fleet": fleet_name,
                "online_samples_per_edge": online_samples_per_edge,
                "micro_f": s.micro.2,
                "macro_f": s.macro_.2,
            }));
        }
    }
    write_json("ablation_online.json", &all);
}
