//! Perf smoke: serial-vs-Hogwild E-LINE training throughput (edges/sec)
//! and serial-vs-parallel dissimilarity-matrix build on the 3-floor
//! synthetic office corpus, printed as JSON for BENCH_*.json trajectories.
//!
//! ```sh
//! cargo run --release -p grafics-bench --bin perf_smoke [-- --threads N --records-per-floor N]
//! ```

use grafics_cluster::dissimilarity_matrix;
use grafics_data::BuildingModel;
use grafics_embed::{ElineTrainer, EmbeddingConfig};
use grafics_graph::{BipartiteGraph, WeightFunction};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = flag(&args, "--threads", 4);
    let records_per_floor = flag(&args, "--records-per-floor", 150);
    let epochs = flag(&args, "--epochs", 40);
    let negatives = flag(&args, "--negatives", 5);
    let dropout = flag(&args, "--dropout-pct", 10) as f64 / 100.0;

    let mut rng = ChaCha8Rng::seed_from_u64(2022);
    let ds = BuildingModel::office("perf-smoke", 3)
        .with_records_per_floor(records_per_floor)
        .simulate(&mut rng);
    let graph = BipartiteGraph::from_dataset(&ds, WeightFunction::default());
    let edges = graph.edge_count();
    // Each sampled edge is processed in both directions; epochs × edges is
    // the trainer's own sample count, the natural throughput unit.
    let total_samples = epochs * edges;

    let repeats = flag(&args, "--repeats", 3);
    // Best-of-N: wall-clock minima are the standard way to strip scheduler
    // noise from single-machine throughput comparisons.
    let time_train = |cfg: EmbeddingConfig| {
        let mut best = f64::INFINITY;
        let mut model = None;
        for _ in 0..repeats.max(1) {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let t = Instant::now();
            let m = ElineTrainer::new(cfg).train(&graph, &mut rng).unwrap();
            best = best.min(t.elapsed().as_secs_f64());
            model = Some(m);
        }
        (best, model.expect("at least one repeat"))
    };

    let serial_cfg = EmbeddingConfig {
        epochs,
        negatives,
        dropout,
        ..Default::default()
    };
    let (serial_secs, serial_model) = time_train(serial_cfg);
    let (parallel_secs, parallel_model) = time_train(EmbeddingConfig {
        threads,
        ..serial_cfg
    });

    assert!(serial_model.all_finite() && parallel_model.all_finite());

    // Dissimilarity matrix over the trained record embeddings.
    let points: Vec<Vec<f64>> = (0..graph.node_capacity())
        .map(|i| serial_model.ego_vec(grafics_graph::NodeIdx(i as u32)))
        .collect();
    let t2 = Instant::now();
    let dm_serial = dissimilarity_matrix(&points, 1);
    let dissim_serial_secs = t2.elapsed().as_secs_f64();
    let t3 = Instant::now();
    let dm_parallel = dissimilarity_matrix(&points, threads);
    let dissim_parallel_secs = t3.elapsed().as_secs_f64();
    assert_eq!(
        dm_serial, dm_parallel,
        "parallel dissimilarity must be exact"
    );

    let serial_eps = total_samples as f64 / serial_secs;
    let parallel_eps = total_samples as f64 / parallel_secs;
    let payload = serde_json::json!({
        "benchmark": "perf_smoke",
        "corpus": "office-3f",
        "records": ds.len(),
        "edges": edges,
        "epochs": epochs,
        "threads": threads,
        "train_serial_secs": serial_secs,
        "train_parallel_secs": parallel_secs,
        "train_serial_edges_per_sec": serial_eps,
        "train_parallel_edges_per_sec": parallel_eps,
        "train_speedup": parallel_eps / serial_eps,
        "dissim_points": points.len(),
        "dissim_serial_secs": dissim_serial_secs,
        "dissim_parallel_secs": dissim_parallel_secs,
        "dissim_speedup": dissim_serial_secs / dissim_parallel_secs.max(1e-12),
    });
    println!("{}", serde_json::to_string_pretty(&payload).unwrap());
}
