//! Perf smoke: serial-vs-Hogwild E-LINE training throughput (edges/sec)
//! and serial-vs-parallel dissimilarity-matrix build on the 3-floor
//! synthetic office corpus, printed as JSON for BENCH_*.json trajectories.
//!
//! ```sh
//! cargo run --release -p grafics-bench --bin perf_smoke [-- --threads N --records-per-floor N]
//! ```

use grafics_cluster::dissimilarity_matrix;
use grafics_data::BuildingModel;
use grafics_embed::{ElineTrainer, EmbeddingConfig};
use grafics_graph::{BipartiteGraph, WeightFunction};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = flag(&args, "--threads", 4);
    let records_per_floor = flag(&args, "--records-per-floor", 150);
    let epochs = flag(&args, "--epochs", 40);
    let negatives = flag(&args, "--negatives", 5);
    let dropout = flag(&args, "--dropout-pct", 10) as f64 / 100.0;

    let mut rng = ChaCha8Rng::seed_from_u64(2022);
    let ds = BuildingModel::office("perf-smoke", 3)
        .with_records_per_floor(records_per_floor)
        .simulate(&mut rng);
    let graph = BipartiteGraph::from_dataset(&ds, WeightFunction::default());
    let edges = graph.edge_count();
    // Each sampled edge is processed in both directions; epochs × edges is
    // the trainer's own sample count, the natural throughput unit.
    let total_samples = epochs * edges;

    let repeats = flag(&args, "--repeats", 3);
    // Best-of-N: wall-clock minima are the standard way to strip scheduler
    // noise from single-machine throughput comparisons.
    let time_train = |cfg: EmbeddingConfig| {
        let mut best = f64::INFINITY;
        let mut model = None;
        for _ in 0..repeats.max(1) {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let t = Instant::now();
            let m = ElineTrainer::new(cfg).train(&graph, &mut rng).unwrap();
            best = best.min(t.elapsed().as_secs_f64());
            model = Some(m);
        }
        (best, model.expect("at least one repeat"))
    };

    let serial_cfg = EmbeddingConfig {
        epochs,
        negatives,
        dropout,
        ..Default::default()
    };
    let (serial_secs, serial_model) = time_train(serial_cfg);
    let (parallel_secs, parallel_model) = time_train(EmbeddingConfig {
        threads,
        ..serial_cfg
    });

    assert!(serial_model.all_finite() && parallel_model.all_finite());

    // Dissimilarity matrix over the trained record embeddings (flat
    // row-major points — the backbone's native layout).
    let mut points = grafics_types::RowMatrix::with_capacity(graph.node_capacity(), 8);
    for i in 0..graph.node_capacity() {
        points.push_row_widen(serial_model.ego(grafics_graph::NodeIdx(i as u32)));
    }
    let t2 = Instant::now();
    let dm_serial = dissimilarity_matrix(&points, 1);
    let dissim_serial_secs = t2.elapsed().as_secs_f64();
    let t3 = Instant::now();
    let dm_parallel = dissimilarity_matrix(&points, threads);
    let dissim_parallel_secs = t3.elapsed().as_secs_f64();
    assert_eq!(
        dm_serial, dm_parallel,
        "parallel dissimilarity must be exact"
    );

    // Clustering fit end-to-end (dissimilarity + agglomeration) at the
    // paper's regime: d = 8, few labels, every record a point.
    let labels: Vec<Option<grafics_types::FloorId>> = (0..points.rows())
        .map(|i| (i % records_per_floor == 0).then_some(grafics_types::FloorId((i % 3) as i16)))
        .collect();
    let mut fit_secs = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let fitted = grafics_cluster::ClusterModel::fit(
            &points,
            &labels,
            &grafics_cluster::ClusteringConfig::default(),
        )
        .unwrap();
        fit_secs = fit_secs.min(t.elapsed().as_secs_f64());
        std::hint::black_box(fitted);
    }

    let dim_sweep = dim_sweep(repeats);

    let serial_eps = total_samples as f64 / serial_secs;
    let parallel_eps = total_samples as f64 / parallel_secs;
    let payload = serde_json::json!({
        "benchmark": "perf_smoke",
        "corpus": "office-3f",
        "records": ds.len(),
        "edges": edges,
        "epochs": epochs,
        "threads": threads,
        "train_serial_secs": serial_secs,
        "train_parallel_secs": parallel_secs,
        "train_serial_edges_per_sec": serial_eps,
        "train_parallel_edges_per_sec": parallel_eps,
        "train_speedup": parallel_eps / serial_eps,
        "dissim_points": points.rows(),
        "dissim_serial_secs": dissim_serial_secs,
        "dissim_parallel_secs": dissim_parallel_secs,
        "dissim_speedup": dissim_serial_secs / dissim_parallel_secs.max(1e-12),
        "cluster_fit_secs": fit_secs,
        "dim_sweep": dim_sweep,
    });
    println!("{}", serde_json::to_string_pretty(&payload).unwrap());
}

/// The math-backbone sweep: per embedding dimension, (a) f32 dot-kernel
/// throughput through the lane-blocked FMA kernel, and (b) the flat
/// cache-blocked dissimilarity build vs an in-bench reproduction of the
/// seed's nested-`Vec` path (per-row heap allocations, sequential
/// euclidean per pair) — asserted bit-identical, so the speedup column
/// measures layout + blocking alone.
fn dim_sweep(repeats: usize) -> Vec<serde_json::JsonValue> {
    const N: usize = 600;
    let mut out = Vec::new();
    for dim in [8usize, 16, 32, 64] {
        // Deterministic synthetic points, nested and flat copies.
        let nested: Vec<Vec<f64>> = (0..N)
            .map(|i| {
                (0..dim)
                    .map(|d| (((i * 31 + d * 17) % 97) as f64 * 0.37).sin() * 10.0)
                    .collect()
            })
            .collect();
        let flat = grafics_types::RowMatrix::from_rows(&nested);

        let best = |f: &mut dyn FnMut() -> Vec<f64>| {
            let mut secs = f64::INFINITY;
            let mut result = Vec::new();
            for _ in 0..repeats.max(1) {
                let t = Instant::now();
                result = f();
                secs = secs.min(t.elapsed().as_secs_f64());
            }
            (secs, result)
        };
        let (flat_secs, flat_dm) = best(&mut || dissimilarity_matrix(&flat, 1));
        let (nested_secs, nested_dm) = best(&mut || {
            // The pre-backbone build: one heap row per point, sequential
            // Σ(x−y)² + sqrt per pair, row-major condensed order.
            let mut dm = Vec::with_capacity(N * (N - 1) / 2);
            for a in 1..N {
                for b in 0..a {
                    let sq: f64 = nested[a]
                        .iter()
                        .zip(&nested[b])
                        .map(|(&x, &y)| (x - y) * (x - y))
                        .sum();
                    dm.push(sq.sqrt());
                }
            }
            dm
        });
        assert_eq!(flat_dm, nested_dm, "dim {dim}: flat build must be exact");

        // f32 lane-blocked dot throughput (the d > 16 serving kernel).
        let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.3).sin()).collect();
        let b: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7).cos()).collect();
        let iters = (4_000_000 / dim).max(1);
        let mut dot_secs = f64::INFINITY;
        for _ in 0..repeats.max(1) {
            let t = Instant::now();
            let mut acc = 0.0f32;
            for _ in 0..iters {
                acc += grafics_types::kernels::dot_lanes_f32(
                    std::hint::black_box(&a),
                    std::hint::black_box(&b),
                );
            }
            std::hint::black_box(acc);
            dot_secs = dot_secs.min(t.elapsed().as_secs_f64());
        }
        let dot_gflops = (2.0 * dim as f64 * iters as f64) / dot_secs / 1e9;

        out.push(serde_json::json!({
            "dim": dim,
            "points": N,
            "dissim_flat_secs": flat_secs,
            "dissim_nested_secs": nested_secs,
            "dissim_flat_speedup": nested_secs / flat_secs.max(1e-12),
            "dot_lanes_gflops": dot_gflops,
        }));
    }
    out
}
