//! Router-tier smoke: the fault-tolerant proxy vs direct single-process
//! serving on the same workload, printed as JSON for BENCH_*.json
//! trajectories.
//!
//! Arms over one trained fleet and one fixed query set:
//!
//! - **direct** — a single `HttpServer` holding every shard; K keep-alive
//!   clients POST one `/v1/infer` per record. This is the PR 6 serving
//!   path and the qps ceiling for the router.
//! - **routed** — the same shards split into one backend process per
//!   building behind a `RouterServer`; the identical client workload hits
//!   the router, which pays route-table lookup + one extra loopback hop
//!   per request.
//! - **bit-identity** — one `/v1/infer_batch` through the router vs
//!   `GraficsFleet::serve_batch` in process: every populated slot must
//!   match to the float bit (the full matrix lives in
//!   `crates/serve/tests/router.rs`; this is the cheap CI spot check).
//! - **streaming ingestion** — a producer thread appends signal records
//!   to a live JSONL feed while a tailer follows the file and POSTs each
//!   complete line to the router's `/v1/absorb`; every ack lands on the
//!   owning backend exactly once (absorbs are never retried), verified
//!   against the merged `/v1/stat` pending counts.
//!
//! The acceptance bar is the router within 2× of direct qps on this
//! shared CI box; the soft assert trips at 0.25 so noise cannot flake
//! the job while a real collapse (breaker misfire, probe storm, lost
//! keep-alive) still fails loudly.
//!
//! ```sh
//! cargo run --release -p grafics-bench --bin router_smoke \
//!     [-- --queries N --clients K --workers W --stream-records S]
//! ```

use grafics_bench::{train_serving_fleet, ExperimentConfig};
use grafics_core::{
    BackendSpec, FleetStats, GraficsConfig, GraficsFleet, RetentionPolicy, RouterManifest,
};
use grafics_data::BuildingModel;
use grafics_serve::{BatchBody, HttpClient, HttpServer, RouterConfig, RouterServer, ServeConfig};
use grafics_types::{HealthPolicy, SignalRecord};
use std::io::Write as _;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

/// K keep-alive clients partition `bodies` and POST one `/v1/infer`
/// each; returns (elapsed secs, served count, sorted per-request µs).
fn run_single_arm(addr: SocketAddr, bodies: &[String], clients: usize) -> (f64, usize, Vec<f64>) {
    let t = Instant::now();
    let mut latencies_us: Vec<f64> = Vec::with_capacity(bodies.len());
    let mut served = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients.max(1) {
            handles.push(scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                let mut lat = Vec::new();
                let mut ok = 0usize;
                let mut i = c;
                while i < bodies.len() {
                    let t = Instant::now();
                    let (status, response) = client.post("/v1/infer", &bodies[i]).expect("request");
                    lat.push(1e6 * t.elapsed().as_secs_f64());
                    assert!(
                        status == 200 || status == 422,
                        "unexpected status {status}: {response}"
                    );
                    ok += usize::from(status == 200);
                    i += clients.max(1);
                }
                (lat, ok)
            }));
        }
        for handle in handles {
            let (lat, ok) = handle.join().expect("client thread");
            latencies_us.extend(lat);
            served += ok;
        }
    });
    let secs = t.elapsed().as_secs_f64();
    latencies_us.sort_by(f64::total_cmp);
    (secs, served, latencies_us)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries = flag(&args, "--queries", 200);
    let clients = flag(&args, "--clients", 2);
    let workers = flag(&args, "--workers", 2);
    let buildings = flag(&args, "--buildings", 2);
    let records_per_floor = flag(&args, "--records-per-floor", 40);
    let stream_records = flag(&args, "--stream-records", 40);
    let seed = 2027u64;

    // One trained fleet; the direct arm serves it whole, the routed arm
    // serves the same shard models split across per-building backends —
    // identical bits by construction, which the batch check pins.
    let fleet_models: Vec<BuildingModel> = (0..buildings)
        .map(|i| {
            BuildingModel::office(&format!("route-{i}"), 3)
                .with_records_per_floor(records_per_floor)
        })
        .collect();
    let cfg = ExperimentConfig {
        threads: 1,
        seed,
        ..Default::default()
    };
    let grafics = GraficsConfig {
        epochs: 30,
        ..GraficsConfig::serving()
    };
    let (fleet, tagged) =
        train_serving_fleet(&fleet_models, &cfg, Some(grafics), RetentionPolicy::KeepAll);
    let records: Vec<SignalRecord> = tagged
        .iter()
        .map(|(_, _, r)| r.clone())
        .cycle()
        .take(queries)
        .collect();
    let reference = fleet.serve_batch(&records, seed, 1);

    // One backend fleet per building, rebuilt from the published
    // snapshots so router and direct arms serve the same models.
    let shard_fleets: Vec<GraficsFleet> = fleet
        .shards()
        .iter()
        .map(|shard| {
            let mut single = GraficsFleet::new();
            single
                .add_shard(shard.id(), (*shard.snapshot()).clone())
                .expect("assemble backend shard");
            single
        })
        .collect();

    let direct = HttpServer::bind(
        fleet,
        "127.0.0.1:0",
        ServeConfig {
            workers,
            seed,
            ..ServeConfig::default()
        },
    )
    .expect("bind direct server")
    .spawn()
    .expect("spawn direct server");

    let backends: Vec<_> = shard_fleets
        .into_iter()
        .map(|single| {
            HttpServer::bind(
                single,
                "127.0.0.1:0",
                ServeConfig {
                    workers,
                    seed,
                    ..ServeConfig::default()
                },
            )
            .expect("bind backend")
            .spawn()
            .expect("spawn backend")
        })
        .collect();

    let mut manifest = RouterManifest::default();
    for (i, backend) in backends.iter().enumerate() {
        manifest.backends.push(BackendSpec {
            name: format!("b{i}"),
            addr: backend.addr().to_string(),
        });
    }
    manifest.health = HealthPolicy {
        probe_interval_ms: 200,
        probe_timeout_ms: 1000,
        fail_threshold: 3,
        recover_threshold: 1,
    };
    let router = RouterServer::bind(
        RouterConfig {
            manifest,
            backend_timeout: Duration::from_secs(5),
            ..RouterConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("bind router")
    .spawn()
    .expect("spawn router");
    assert!(
        router.wait_for_buildings(buildings, Duration::from_secs(10)),
        "route table never filled"
    );

    let single_bodies: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "{{\"record\":{},\"seed\":{seed}}}",
                serde_json::to_string(r).expect("record serializes")
            )
        })
        .collect();

    // Arm 1: direct single-process serving (the ceiling).
    let (direct_secs, served_direct, direct_lat) =
        run_single_arm(direct.addr(), &single_bodies, clients);
    let qps_direct = served_direct as f64 / direct_secs;

    // Arm 2: the same workload through the router.
    let (routed_secs, served_routed, routed_lat) =
        run_single_arm(router.addr(), &single_bodies, clients);
    let qps_routed = served_routed as f64 / routed_secs;
    assert_eq!(served_routed, served_direct, "arms served the same set");

    // Arm 3: bit-identity spot check — the proxied batch answers exactly
    // what the in-process engine answered.
    let mut client = HttpClient::connect(router.addr()).expect("connect router");
    let batch_body = format!(
        "{{\"records\":{},\"seed\":{seed}}}",
        serde_json::to_string(&records).expect("records serialize")
    );
    let (status, response) = client.post("/v1/infer_batch", &batch_body).expect("batch");
    assert_eq!(status, 200, "{response}");
    let batch: BatchBody = serde_json::from_str(&response).expect("batch body");
    assert_eq!(batch.predictions.len(), reference.len());
    let mut pinned = 0usize;
    for (wire, local) in batch.predictions.iter().zip(&reference) {
        if let (Some(w), Some(l)) = (wire, local) {
            assert_eq!(w.building, l.building.0, "routed building diverged");
            assert_eq!(
                w.distance.to_bits(),
                l.distance.to_bits(),
                "router hop must be bit-invisible"
            );
            pinned += 1;
        }
    }
    assert_eq!(pinned, served_direct, "every served slot pinned");

    // Arm 4: streaming ingestion — tail a live JSONL feed into the
    // router'd fleet. The producer appends one record per line (with
    // explicit building tags: held-out records share MACs with their own
    // building's graph, so every absorb is accepted); the tailer follows
    // the file, posting each *complete* line as it lands.
    let feed_path = std::env::temp_dir().join(format!("grafics-router-smoke-feed-{seed}.jsonl"));
    let _ = std::fs::remove_file(&feed_path);
    let stream_lines: Vec<String> = tagged
        .iter()
        .cycle()
        .take(stream_records)
        .map(|(building, _, r)| {
            format!(
                "{{\"record\":{},\"building\":{}}}",
                serde_json::to_string(r).expect("record serializes"),
                building.0
            )
        })
        .collect();
    let t = Instant::now();
    let producer_path = feed_path.clone();
    let producer_lines = stream_lines.clone();
    let producer = std::thread::spawn(move || {
        let mut feed = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&producer_path)
            .expect("open feed");
        for line in &producer_lines {
            writeln!(feed, "{line}").expect("append feed line");
            feed.flush().expect("flush feed");
            std::thread::sleep(Duration::from_millis(2));
        }
    });
    let mut ingest = HttpClient::connect(router.addr()).expect("connect router");
    let mut offset = 0usize;
    let mut absorbed = 0usize;
    let deadline = Instant::now() + Duration::from_secs(60);
    while absorbed < stream_records {
        assert!(Instant::now() < deadline, "feed tail stalled");
        let text = std::fs::read_to_string(&feed_path).unwrap_or_default();
        let fresh = &text[offset.min(text.len())..];
        let Some(complete) = fresh.rfind('\n') else {
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        for line in fresh[..complete].lines().filter(|l| !l.is_empty()) {
            let (status, response) = ingest.post("/v1/absorb", line).expect("absorb");
            assert_eq!(status, 200, "streamed absorb rejected: {response}");
            absorbed += 1;
        }
        offset += complete + 1;
    }
    producer.join().expect("producer thread");
    let stream_secs = t.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&feed_path);

    // Every streamed record is pending on exactly one backend — the
    // router's merged stat view agrees with the ack count (absorbs are
    // single-shot: no retry can double-apply one).
    let (status, response) = ingest.get("/v1/stat").expect("stat");
    assert_eq!(status, 200, "{response}");
    let stats: FleetStats = serde_json::from_str(&response).expect("merged stats");
    let pending: usize = stats.shards.iter().map(|s| s.pending).sum();
    assert_eq!(pending, absorbed, "acks must equal pending absorbs");

    let ratio = qps_routed / qps_direct;
    // Soft floor: acceptance bar 0.5 (within 2×); tripping at 0.25
    // catches a real regression without flaking on CI box noise.
    assert!(
        ratio > 0.25,
        "router qps collapsed: {ratio:.2} of direct serving"
    );

    let router_report = router.shutdown().expect("router exits cleanly");
    let direct_report = direct.shutdown().expect("direct server exits cleanly");
    for backend in backends {
        backend.shutdown().expect("backend exits cleanly");
    }

    let direct_arm = serde_json::json!({
        "qps": qps_direct,
        "p50_us": percentile(&direct_lat, 0.50),
        "p99_us": percentile(&direct_lat, 0.99),
    });
    let routed_arm = serde_json::json!({
        "qps": qps_routed,
        "ratio_vs_direct": ratio,
        "p50_us": percentile(&routed_lat, 0.50),
        "p99_us": percentile(&routed_lat, 0.99),
    });
    let bit_identity = serde_json::json!({ "pinned_slots": pinned });
    let streaming = serde_json::json!({
        "records": absorbed,
        "ingest_qps": absorbed as f64 / stream_secs,
        "pending_after": pending,
    });
    let payload = serde_json::json!({
        "benchmark": "router_smoke",
        "corpus": format!("{buildings}x office-3f, {records_per_floor}/floor"),
        "queries": queries,
        "served": served_direct,
        "clients": clients,
        "workers": workers,
        "direct": direct_arm,
        "routed": routed_arm,
        "bit_identity": bit_identity,
        "streaming": streaming,
        "router_requests": router_report.requests,
        "direct_requests": direct_report.requests,
        "method": "same shard models in both arms (backends rebuilt from published snapshots); routed batch pinned bit-identical to in-process serve_batch; streaming arm tails a live JSONL feed into /v1/absorb through the router",
    });
    println!("{}", serde_json::to_string_pretty(&payload).unwrap());
}
