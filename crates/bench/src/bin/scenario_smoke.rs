//! Scenario smoke: drift-triggered refresh versus blind fixed cadence,
//! replayed over the named drift presets.
//!
//! For each drift preset × retention policy, the same timeline is
//! replayed twice — once refreshing every shard on a fixed epoch
//! cadence, once refreshing only when a shard's served-margin window
//! degrades ([`RefreshTrigger::MarginDrop`]) — and the
//! accuracy-over-time curves are compared refresh for refresh.
//!
//! Acceptance (soft floor, asserted here): on at least one drift
//! preset, the margin-triggered arm holds mean accuracy within 2
//! points of the fixed cadence while spending **no more** refreshes.
//! Reports are seed-pinned: the margin arm is replayed twice and must
//! serialize bit-identically.
//!
//! ```sh
//! cargo run --release -p grafics-bench --bin scenario_smoke \
//!     [-- --absorbs N --probes N --records-per-floor N --window N --ratio R]
//! ```

use grafics_bench::write_json;
use grafics_core::RetentionPolicy;
use grafics_scenario::{replay, RefreshMode, ReplayConfig, Scenario, ScenarioReport};
use grafics_types::RefreshTrigger;

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A preset shrunk to CI size: two buildings, a lighter corpus, and the
/// requested absorb/probe volumes per epoch. The probe volume stays
/// above the trigger window so every epoch refills the margin ring.
fn shrink(name: &str, records_per_floor: usize, absorbs: usize, probes: usize) -> Scenario {
    let mut s = Scenario::preset(name).expect("known preset");
    s.buildings = 2;
    s.records_per_floor = records_per_floor;
    for e in &mut s.epochs {
        e.absorb_per_building = absorbs;
        e.probe_per_building = probes;
    }
    s
}

fn run(scenario: &Scenario, retention: RetentionPolicy, refresh: RefreshMode) -> ScenarioReport {
    let cfg = ReplayConfig {
        seed: 2022,
        retention,
        refresh,
        ..ReplayConfig::default()
    };
    replay(scenario, &cfg).expect("replay")
}

fn arm_json(r: &ScenarioReport) -> serde::Value {
    serde_json::json!({
        "refresh": r.refresh,
        "mean_accuracy": r.mean_accuracy(),
        "min_accuracy": r.min_accuracy(),
        "refreshes": r.total_refreshes(),
        "accuracy_by_epoch": r.epochs.iter().map(|e| e.accuracy).collect::<Vec<_>>(),
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let absorbs = flag(&args, "--absorbs", 25);
    let probes = flag(&args, "--probes", 40);
    let records_per_floor = flag(&args, "--records-per-floor", 30);

    let window = flag(&args, "--window", 32);
    let ratio = args
        .iter()
        .position(|a| a == "--ratio")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.98);
    let trigger = RefreshTrigger::MarginDrop { window, ratio };
    let cadence = RefreshMode::Cadence(2);
    let margin = RefreshMode::MarginTrigger(trigger);
    let trigger_label = margin.label();
    let presets = ["mall-renovation", "campus-churn"];
    let retentions = [
        ("keep-all", RetentionPolicy::KeepAll),
        ("fifo-600", RetentionPolicy::FifoBudget(600)),
    ];

    println!(
        "{:>16} {:>9} {:>12} {:>8} {:>8} {:>9}",
        "preset", "retention", "refresh", "mean-F", "min-F", "refreshes"
    );
    let mut payload_runs = Vec::new();
    // (margin holds the floor?, margin refreshes <= cadence refreshes)
    let mut floor_held = Vec::new();
    for preset in presets {
        let scenario = shrink(preset, records_per_floor, absorbs, probes);
        for (retention_name, retention) in retentions {
            let fixed = run(&scenario, retention, cadence);
            let triggered = run(&scenario, retention, margin);
            for r in [&fixed, &triggered] {
                println!(
                    "{:>16} {:>9} {:>12} {:>8.3} {:>8.3} {:>9}",
                    preset,
                    retention_name,
                    r.refresh,
                    r.mean_accuracy(),
                    r.min_accuracy(),
                    r.total_refreshes()
                );
            }
            if retention_name == "keep-all" {
                floor_held.push(
                    triggered.mean_accuracy() >= fixed.mean_accuracy() - 0.02
                        && triggered.total_refreshes() <= fixed.total_refreshes(),
                );
            }
            payload_runs.push(serde_json::json!({
                "preset": preset,
                "retention": retention_name,
                "cadence": arm_json(&fixed),
                "margin": arm_json(&triggered),
            }));
        }
    }

    let payload = serde_json::json!({
        "benchmark": "scenario_smoke",
        "seed": 2022,
        "corpus": format!("2x microsoft-preset buildings, {records_per_floor}/floor"),
        "absorbs_per_building_epoch": absorbs,
        "probes_per_building_epoch": probes,
        "trigger": trigger_label,
        "runs": payload_runs,
        "acceptance": "margin-triggered mean accuracy >= cadence - 0.02 at <= refreshes on >= 1 drift preset; bit-identical reports for a pinned seed",
    });
    println!("{}", serde_json::to_string_pretty(&payload).unwrap());
    write_json("scenario_smoke.json", &payload);

    // Seed-pinned determinism: the same (scenario, config) pair must
    // serialize bit-identically across runs.
    let scenario = shrink(presets[0], records_per_floor, absorbs, probes);
    let a = run(&scenario, RetentionPolicy::KeepAll, margin);
    let b = run(&scenario, RetentionPolicy::KeepAll, margin);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "scenario replay must be deterministic for a pinned seed"
    );

    // The acceptance floor: drift-triggered refresh matches the blind
    // cadence on at least one drift preset without outspending it.
    assert!(
        floor_held.iter().any(|&ok| ok),
        "margin-triggered refresh held the floor on no drift preset"
    );
}
