//! Serving smoke: online queries/sec against graph size, incremental
//! negative sampler vs the pre-PR rebuild-per-query path, printed as JSON
//! for BENCH_*.json trajectories.
//!
//! The model is trained once on a small labelled corpus, then grown to
//! each target node count by absorbing simulated crowdsourced records
//! through the online path (exactly how a deployment's graph grows). At
//! every checkpoint the same query set is served two ways:
//!
//! - **incremental** — [`grafics_core::GraficsServer`] over the model's
//!   incrementally maintained sampler: O(deg + log n) per query;
//! - **adaptive** — the same engine under the deployment-tunable fast
//!   policy (adaptive refinement budget stopping on a decisive top-2
//!   centroid margin, f32 centroid sweep with f64 re-score), with
//!   p50/p95/p99 per-query latency, the early-stop rate, and the floor
//!   agreement against the incremental arm;
//! - **rebuild** — a faithful reference reproduction of the pre-PR
//!   per-query procedure: the O(n) `d_z^{3/4}` sweep + alias-table
//!   construction *and* the historical serial embedding kernels
//!   (exact-`exp` sigmoid, two-RNG-draw alias sampling, per-query
//!   allocations), as `Grafics::infer` ran before the serving engine.
//!
//! The win is algorithmic, not parallelism: every path runs one thread.
//!
//! ```sh
//! cargo run --release -p grafics-bench --bin serve_smoke [-- --queries N --sizes 5000,20000]
//! ```
//!
//! The default sizes are the two largest of the historical
//! {1 000, 5 000, 20 000} sweep — the small point showed the same flat
//! per-query cost while costing CI minutes next to `fleet_smoke`; pass
//! `--sizes` explicitly to re-measure it.

use grafics_core::{
    Grafics, GraficsConfig, GraficsServer, MatchPrecision, OnlineBudget, Prediction, ServingPolicy,
};
use grafics_graph::{AliasTable, BipartiteGraph, NodeIdx};
use grafics_types::SignalRecord;

use grafics_data::BuildingModel;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// The pre-serving-engine online path, reproduced from the original
/// `ElineTrainer::embed_new_node` + `Sgd::step` (E-LINE objective, the
/// preset in use): per query it re-sweeps the `d_z^{3/4}` weights over the
/// whole node space, builds two alias tables, embeds the new node with
/// the exact-`exp` sigmoid and sequential dot/axpy kernels, and allocates
/// its working vectors afresh — everything the engine now avoids.
fn legacy_infer(
    model: &Grafics,
    record: &SignalRecord,
    rng: &mut ChaCha8Rng,
) -> Option<Prediction> {
    let graph: &BipartiteGraph = model.graph();
    let cfg = model.config();
    let dim = cfg.dim;
    let embeddings = model.embeddings();

    // Historical per-query O(n) rebuild.
    let neg_weights = graph.negative_sampling_weights(0.75);
    let neg_alias = AliasTable::new(&neg_weights)?;

    // Known-MAC neighbor list — the same anchoring rule as the server, so
    // both arms serve the same record set (never-seen MACs trained only
    // against their own fresh random rows historically; skipping them
    // shortens this arm's loop, which is conservative for the
    // comparison).
    let mut neighbors: Vec<(NodeIdx, f64)> = Vec::new();
    for reading in record.readings() {
        if let Some(m) = graph.mac_node(reading.mac) {
            neighbors.push((m, graph.weight_function().weight(reading.rssi)));
        }
    }
    let weights: Vec<f64> = neighbors.iter().map(|&(_, w)| w).collect();
    let local_alias = AliasTable::new(&weights)?;

    let sigmoid = |x: f32| 1.0 / (1.0 + (-x.clamp(-8.0, 8.0)).exp());
    let dot = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(&x, &y)| x * y).sum() };
    let bound = 0.5 / dim as f32;
    let mut node_ego: Vec<f32> = (0..dim).map(|_| rng.gen_range(-bound..=bound)).collect();
    let mut node_ctx: Vec<f32> = (0..dim).map(|_| rng.gen_range(-bound..=bound)).collect();
    let mut negatives: Vec<NodeIdx> = Vec::with_capacity(cfg.negatives);

    let total = cfg.online_samples_per_edge * neighbors.len();
    for t in 0..total {
        let frac = 1.0 - t as f32 / total as f32;
        let lr = cfg.initial_lr as f32 * frac.max(1e-4);
        let (j, _) = neighbors[local_alias.sample(rng)];
        negatives.clear();
        let mut guard = 0;
        while negatives.len() < cfg.negatives && guard < 20 * cfg.negatives.max(1) {
            let z = NodeIdx(neg_alias.sample(rng) as u32);
            if z != j {
                negatives.push(z);
            }
            guard += 1;
        }
        // E-LINE: two positive+negative directions, two positive pulls —
        // node rows are the only ones written (everything else frozen).
        for (src, tgt_ctx) in [(&mut node_ego, true), (&mut node_ctx, false)] {
            let jrow = if tgt_ctx {
                embeddings.context(j)
            } else {
                embeddings.ego(j)
            };
            let mut grad = vec![0.0f32; dim];
            let g = lr * (1.0 - sigmoid(dot(src, jrow)));
            for d in 0..dim {
                grad[d] += g * jrow[d];
            }
            for &z in &negatives {
                let zrow = if tgt_ctx {
                    embeddings.context(z)
                } else {
                    embeddings.ego(z)
                };
                let g = lr * (0.0 - sigmoid(dot(src, zrow)));
                for d in 0..dim {
                    grad[d] += g * zrow[d];
                }
            }
            for d in 0..dim {
                src[d] += grad[d];
            }
        }
        for (src, jrow) in [
            (&mut node_ctx, embeddings.ego(j)),
            (&mut node_ego, embeddings.context(j)),
        ] {
            let g = lr * (1.0 - sigmoid(dot(src, jrow)));
            for d in 0..dim {
                src[d] += g * jrow[d];
            }
        }
    }

    let query: Vec<f64> = node_ego.iter().map(|&x| f64::from(x)).collect();
    model.clusters().predict(&query).ok()
}

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries = flag(&args, "--queries", 200);
    let sizes: Vec<usize> = args
        .iter()
        .position(|a| a == "--sizes")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').filter_map(|s| s.parse().ok()).collect())
        .unwrap_or_else(|| vec![5_000, 20_000]);

    // Train once on a small labelled corpus, with the serving preset
    // (accuracy-equivalent per-query budget; see `spe_sweep`).
    let mut rng = ChaCha8Rng::seed_from_u64(2022);
    let train = BuildingModel::office("serve-smoke", 3)
        .with_records_per_floor(60)
        .simulate(&mut rng)
        .with_label_budget(4, &mut rng);
    let config = GraficsConfig {
        epochs: 30,
        ..GraficsConfig::serving()
    };
    let mut model = Grafics::train(&train, &config, &mut rng).unwrap();

    // A fixed query set, and a large unlabelled stream to grow the graph.
    let query_set: Vec<SignalRecord> = BuildingModel::office("serve-smoke", 3)
        .with_records_per_floor(queries.div_ceil(3).max(1))
        .simulate(&mut rng)
        .samples()
        .iter()
        .take(queries)
        .map(|s| s.record.clone())
        .collect();
    let max_nodes = sizes.iter().copied().max().unwrap_or(1_000);
    let stream = BuildingModel::office("serve-smoke", 3)
        .with_records_per_floor(max_nodes.div_ceil(3) + 64)
        .simulate(&mut rng);
    let mut absorb = stream.samples().iter();

    let mut points = Vec::new();
    for &target in &sizes {
        // Grow the graph online to the target node count.
        while model.graph().node_capacity() < target {
            let Some(s) = absorb.next() else { break };
            let _ = model.infer(&s.record, &mut rng);
        }
        let nodes = model.graph().node_capacity();

        // Incremental path: shared sampler, session scratch, historical
        // fixed budget + f64 matching.
        let mut server = model.server();
        let t = Instant::now();
        let mut served = 0usize;
        let mut inc_lat_us: Vec<f64> = Vec::with_capacity(query_set.len());
        let mut inc_floors = Vec::with_capacity(query_set.len());
        for (i, q) in query_set.iter().enumerate() {
            let mut qrng = ChaCha8Rng::seed_from_u64(i as u64);
            let tq = Instant::now();
            let pred = server.infer(q, &mut qrng).ok();
            inc_lat_us.push(1e6 * tq.elapsed().as_secs_f64());
            served += usize::from(pred.is_some());
            inc_floors.push(pred.map(|p| p.floor));
        }
        let incremental_secs = t.elapsed().as_secs_f64();
        inc_lat_us.sort_by(f64::total_cmp);

        // Adaptive + f32 path: the deployment-tunable fast configuration —
        // refinement stops once the top-2 centroid margin is decisive,
        // matching sweeps in f32 with an f64 re-score of the shortlist.
        let policy = ServingPolicy {
            budget: Some(OnlineBudget::Adaptive {
                max_spe: 40,
                min_spe: 10,
                margin_ratio: 0.25,
            }),
            precision: Some(MatchPrecision::F32Refined),
        };
        let mut adaptive_server = GraficsServer::with_policy(&model, policy);
        let t = Instant::now();
        let mut served_adaptive = 0usize;
        let mut agree = 0usize;
        let mut ada_lat_us: Vec<f64> = Vec::with_capacity(query_set.len());
        for (i, q) in query_set.iter().enumerate() {
            let mut qrng = ChaCha8Rng::seed_from_u64(i as u64);
            let tq = Instant::now();
            let floor = adaptive_server.infer(q, &mut qrng).ok().map(|p| p.floor);
            ada_lat_us.push(1e6 * tq.elapsed().as_secs_f64());
            served_adaptive += usize::from(floor.is_some());
            agree += usize::from(floor.is_some() && floor == inc_floors[i]);
        }
        let adaptive_secs = t.elapsed().as_secs_f64();
        ada_lat_us.sort_by(f64::total_cmp);
        let counters = adaptive_server.counters();
        assert_eq!(
            served, served_adaptive,
            "adaptive arm must serve the same record set"
        );
        let agreement = agree as f64 / served.max(1) as f64;
        assert!(
            agreement >= 0.9,
            "adaptive+f32 floors must track the fixed path: {agreement:.3}"
        );

        // Historical rebuild-per-query path (see `legacy_infer`).
        let t = Instant::now();
        let mut served_rebuild = 0usize;
        for (i, q) in query_set.iter().enumerate() {
            let mut qrng = ChaCha8Rng::seed_from_u64(i as u64);
            served_rebuild += usize::from(legacy_infer(&model, q, &mut qrng).is_some());
        }
        let rebuild_secs = t.elapsed().as_secs_f64();

        assert_eq!(served, served_rebuild, "paths must serve the same set");
        let qps_incremental = queries as f64 / incremental_secs;
        let qps_rebuild = queries as f64 / rebuild_secs;
        let early_stop_rate = counters.early_stops as f64 / served.max(1) as f64;
        points.push(serde_json::json!({
            "nodes": nodes,
            "edges": model.graph().edge_count(),
            "queries": queries,
            "served": served,
            "qps_incremental": qps_incremental,
            "qps_rebuild_per_query": qps_rebuild,
            "us_per_query_incremental": 1e6 * incremental_secs / queries as f64,
            "incremental_p50_us": percentile(&inc_lat_us, 0.50),
            "incremental_p95_us": percentile(&inc_lat_us, 0.95),
            "incremental_p99_us": percentile(&inc_lat_us, 0.99),
            "us_per_query_adaptive": 1e6 * adaptive_secs / queries as f64,
            "adaptive_p50_us": percentile(&ada_lat_us, 0.50),
            "adaptive_p95_us": percentile(&ada_lat_us, 0.95),
            "adaptive_p99_us": percentile(&ada_lat_us, 0.99),
            "adaptive_early_stop_rate": early_stop_rate,
            "adaptive_floor_agreement": agreement,
            "speedup_adaptive_vs_incremental": incremental_secs / adaptive_secs,
            "us_per_query_rebuild": 1e6 * rebuild_secs / queries as f64,
            "speedup": qps_incremental / qps_rebuild,
        }));
    }

    let payload = serde_json::json!({
        "benchmark": "serve_smoke",
        "corpus": "office-3f (grown online)",
        "threads": 1,
        "points": points,
    });
    println!("{}", serde_json::to_string_pretty(&payload).unwrap());
}
