//! Fig. 9 — building-population summary: floors, floor-plate area, #MACs
//! and #records per building for both fleets.

use grafics_bench::{fleets, write_json, ExperimentConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    fleet: &'static str,
    name: String,
    floors: i16,
    area_m2: f64,
    macs: usize,
    records: usize,
}

fn main() {
    let cfg = ExperimentConfig::from_args();
    let mut rows = Vec::new();
    for (fleet_name, fleet) in fleets(&cfg) {
        for b in &fleet {
            let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ b.mac_namespace);
            let ds = b.simulate(&mut rng);
            let st = ds.stats();
            rows.push(Row {
                fleet: fleet_name,
                name: b.name.clone(),
                floors: b.floors,
                area_m2: b.area_m2(),
                macs: st.macs,
                records: st.records,
            });
        }
    }
    println!(
        "{:<10} {:<12} {:>6} {:>12} {:>8} {:>9}",
        "fleet", "building", "floors", "area (m^2)", "#MACs", "#records"
    );
    for r in &rows {
        println!(
            "{:<10} {:<12} {:>6} {:>12.0} {:>8} {:>9}",
            r.fleet, r.name, r.floors, r.area_m2, r.macs, r.records
        );
    }
    let (min_f, max_f) = rows.iter().fold((i16::MAX, i16::MIN), |acc, r| {
        (acc.0.min(r.floors), acc.1.max(r.floors))
    });
    println!("\nfloor range {min_f}–{max_f} (paper: 2–12)");
    write_json("fig09_buildings.json", &rows);
}
