//! Accuracy ablation of the embedding objective: E-LINE vs LINE-2nd vs
//! LINE-1st+2nd vs LINE-1st, at 4 labels per floor. Reproduces §IV-B's
//! observation that on the bipartite graph second-order-only beats
//! first+second, and E-LINE beats both.

use grafics_bench::{fleets, mean_report, run_fleet, write_json, Algo, ExperimentConfig};
use grafics_core::GraficsConfig;
use grafics_embed::Objective;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let objectives = [
        Objective::ELine,
        Objective::LineSecond,
        Objective::LineBoth,
        Objective::LineFirst,
    ];
    let mut all = Vec::new();
    for (fleet_name, fleet) in fleets(&cfg) {
        println!("\n== {fleet_name} ==");
        println!(
            "{:<14} {:>9} {:>9} {:>9}",
            "objective", "micro-F", "macro-F", "±std"
        );
        for objective in objectives {
            let over = GraficsConfig {
                objective,
                ..Default::default()
            };
            let results = run_fleet(&fleet, &[Algo::Grafics], &cfg, Some(over));
            let s = &mean_report(&results)[0];
            println!(
                "{:<14} {:>9.3} {:>9.3} {:>9.3}",
                objective.to_string(),
                s.micro.2,
                s.macro_.2,
                s.micro_f_std
            );
            all.push(serde_json::json!({
                "fleet": fleet_name,
                "objective": objective.to_string(),
                "micro_f": s.micro.2,
                "macro_f": s.macro_.2,
                "std": s.micro_f_std,
            }));
        }
    }
    write_json("ablation_objectives.json", &all);
}
