//! Fig. 16 — the offset weight function `f(RSS) = RSS + 120` vs the
//! power weight `g(RSS) = 10^{RSS/10}`. Expected shape: `f` substantially
//! better on every metric, because `g` compresses RSS differences into
//! nearly identical tiny weights.

use grafics_bench::{
    fleets, mean_report, print_summaries, run_fleet, write_json, Algo, ExperimentConfig,
};

fn main() {
    let cfg = ExperimentConfig::from_args();
    let algos = [Algo::Grafics, Algo::GraficsPowerWeight];
    let mut all = Vec::new();
    for (fleet_name, fleet) in fleets(&cfg) {
        let results = run_fleet(&fleet, &algos, &cfg, None);
        let summaries = mean_report(&results);
        print_summaries(&format!("{fleet_name} (f offset vs g power)"), &summaries);
        all.push(serde_json::json!({ "fleet": fleet_name, "summaries": summaries }));
    }
    write_json("fig16_weight_fn.json", &all);
}
