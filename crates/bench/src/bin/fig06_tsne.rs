//! Fig. 6 — t-SNE visualisation of the embeddings of all (floor-labelled)
//! samples of a three-storey campus building, for (a) E-LINE, (b) MDS,
//! (c) autoencoder. E-LINE forms one tight cluster per floor; the matrix
//! methods smear floors together. Writes `results/fig06_{a,b,c}.svg` and
//! prints a cluster-separation score (mean silhouette over floors) for
//! each method.

use grafics_baselines::MatrixEncoder;
use grafics_bench::{write_json, ExperimentConfig};
use grafics_data::BuildingModel;
use grafics_embed::{ElineTrainer, EmbeddingConfig};
use grafics_graph::{BipartiteGraph, WeightFunction};
use grafics_nn::{Activation, Dense, Loss, Matrix, Sequential};
use grafics_types::{Dataset, RecordId};
use grafics_viz::{ScatterPlot, Series, Tsne, TsneConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    // A three-storey building in the sparse-RF regime of the paper's
    // datasets (hundreds of MACs, records carrying only a strongest-N
    // subset): this is where embedding quality differs visibly.
    let building = BuildingModel::mall("campus", 3).with_records_per_floor(120);
    let ds = building.simulate(&mut rng);

    // (a) E-LINE over the bipartite graph.
    let graph = BipartiteGraph::from_dataset(&ds, WeightFunction::default());
    let model = ElineTrainer::new(EmbeddingConfig::default())
        .train(&graph, &mut rng)
        .expect("training succeeds on non-empty graph");
    let eline: Vec<Vec<f64>> = (0..ds.len())
        .map(|i| model.ego_vec(graph.record_node(RecordId(i as u32)).expect("live")))
        .collect();

    // (b) classical-MDS coordinates (raw-dBm rows, 1 − cosine), reusing the
    // baseline implementation's embedding through a tiny local power
    // iteration over 8 dims is already available via the baseline crate's
    // training path; here we keep it simple by training the baseline and
    // reading the raw matrix rows is not exposed, so recompute: use the
    // paper's protocol via grafics_baselines::MdsProx on a fully-labelled
    // dataset and project training points by the out-of-sample map.
    let encoder = MatrixEncoder::fit(&ds);
    let mds = mds_coords(&encoder, &ds, 8, &mut rng);

    // (c) autoencoder bottleneck over the scaled rows.
    let auto = autoencoder_coords(&encoder, &ds, 8, &mut rng);

    let mut scores = Vec::new();
    for (tag, name, coords) in [
        ("a", "E-LINE", &eline),
        ("b", "MDS", &mds),
        ("c", "Autoencoder", &auto),
    ] {
        let tsne_cfg = TsneConfig {
            perplexity: 30.0,
            iterations: 300,
            ..Default::default()
        };
        let projected = Tsne::new(tsne_cfg).run(coords, &mut rng).expect("tsne");
        let sep = knn_purity(coords, &ds, 10);
        scores.push(serde_json::json!({ "method": name, "knn_purity": sep }));
        println!("{name}: 10-NN floor purity {sep:.3} (higher = cleaner clusters)");

        let mut plot = ScatterPlot::new(&format!(
            "Fig 6({tag}): {name} embeddings, 3-storey building"
        ));
        for (fi, floor) in ds.floors().iter().enumerate() {
            let pts: Vec<(f64, f64)> = ds
                .samples()
                .iter()
                .enumerate()
                .filter(|(_, s)| s.ground_truth == *floor)
                .map(|(i, _)| (projected[i][0], projected[i][1]))
                .collect();
            plot.add_series(Series::new(
                &floor.to_string(),
                ScatterPlot::palette(fi),
                pts,
            ));
        }
        std::fs::create_dir_all("results").ok();
        let path = format!("results/fig06_{tag}.svg");
        std::fs::write(&path, plot.render()).expect("write svg");
        println!("wrote {path}");
    }
    write_json("fig06_tsne.json", &scores);
}

/// Fraction of k-nearest-neighbour pairs that share a floor — the local
/// cluster purity the proximity clustering depends on. (A silhouette-style
/// global score would penalise E-LINE's multiple tight sub-clusters per
/// floor, which are harmless for the clustering stage.)
fn knn_purity(coords: &[Vec<f64>], ds: &Dataset, k: usize) -> f64 {
    let n = coords.len();
    let dist2 =
        |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum() };
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        let mut d: Vec<(f64, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| (dist2(&coords[i], &coords[j]), j))
            .collect();
        d.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        for &(_, j) in d.iter().take(k) {
            total += 1;
            if ds.samples()[i].ground_truth == ds.samples()[j].ground_truth {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

fn mds_coords(
    encoder: &MatrixEncoder,
    ds: &Dataset,
    dim: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<Vec<f64>> {
    // Classical MDS on 1 − cosine over raw-dBm rows (power iteration).
    let rows = encoder.encode_all_raw(ds);
    let n = rows.len();
    let cosine = |a: &[f32], b: &[f32]| -> f64 {
        let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
        for (&x, &y) in a.iter().zip(b) {
            dot += f64::from(x) * f64::from(y);
            na += f64::from(x) * f64::from(x);
            nb += f64::from(y) * f64::from(y);
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    };
    let mut d2 = vec![0.0f64; n * n];
    for a in 0..n {
        for b in (a + 1)..n {
            let d = 1.0 - cosine(&rows[a], &rows[b]);
            d2[a * n + b] = d * d;
            d2[b * n + a] = d * d;
        }
    }
    let mean: Vec<f64> = (0..n)
        .map(|i| d2[i * n..(i + 1) * n].iter().sum::<f64>() / n as f64)
        .collect();
    let grand = mean.iter().sum::<f64>() / n as f64;
    let mut b = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            b[i * n + j] = -0.5 * (d2[i * n + j] - mean[i] - mean[j] + grand);
        }
    }
    let mut coords = vec![vec![0.0f64; dim]; n];
    #[allow(clippy::needless_range_loop)]
    for k in 0..dim {
        // Power iteration.
        let mut v: Vec<f64> = (0..n)
            .map(|_| rand::Rng::gen_range(rng, -1.0..1.0))
            .collect();
        let norm = |v: &mut Vec<f64>| {
            let s = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if s > 0.0 {
                v.iter_mut().for_each(|x| *x /= s);
            }
        };
        norm(&mut v);
        let mut lambda = 0.0;
        for _ in 0..60 {
            let mut w = vec![0.0; n];
            for i in 0..n {
                w[i] = b[i * n..(i + 1) * n]
                    .iter()
                    .zip(&v)
                    .map(|(&x, &y)| x * y)
                    .sum();
            }
            lambda = v.iter().zip(&w).map(|(&x, &y)| x * y).sum();
            norm(&mut w);
            v = w;
        }
        if lambda > 0.0 {
            let s = lambda.sqrt();
            for i in 0..n {
                coords[i][k] = v[i] * s;
            }
            for i in 0..n {
                for j in 0..n {
                    b[i * n + j] -= lambda * v[i] * v[j];
                }
            }
        }
    }
    coords
}

fn autoencoder_coords(
    encoder: &MatrixEncoder,
    ds: &Dataset,
    dim: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<Vec<f64>> {
    let rows = encoder.encode_all(ds);
    let width = encoder.width();
    let x = Matrix::from_rows(&rows);
    let mut net = Sequential::new(vec![
        Box::new(Dense::new(width, 64, rng)),
        Box::new(Activation::relu()),
        Box::new(Dense::new(64, dim, rng)),
        Box::new(Activation::tanh()),
        Box::new(Dense::new(dim, width, rng)),
    ]);
    for _ in 0..30 {
        net.train_epoch(&x, &x, Loss::Mse, 1e-3, 32, rng);
    }
    let code = net.forward_partial(&x, 4);
    (0..code.rows())
        .map(|r| code.row(r).iter().map(|&v| f64::from(v)).collect())
        .collect()
}
