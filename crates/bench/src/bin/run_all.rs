//! Runs the complete evaluation suite — every paper figure, every
//! ablation, every extension — sequentially with shared CLI flags, and
//! writes a manifest of produced artefacts. This is the one-command
//! regeneration entry point for EXPERIMENTS.md.

use std::process::Command;

const BINARIES: &[&str] = &[
    "fig01_stats",
    "fig09_buildings",
    "fig06_tsne",
    "fig08_progression",
    "fig13_eline_vs_line",
    "fig14_graph_vs_matrix",
    "fig16_weight_fn",
    "fig15_dim_sweep",
    "fig17_mac_fraction",
    "fig12_training_ratio",
    "fig11_labels_sweep",
    "ablation_objectives",
    "ablation_clustering",
    "ablation_negatives",
    "ablation_online",
    "extension_drift",
    "extension_oracle",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let started = std::time::Instant::now();
    let mut failures = Vec::new();
    for (i, bin) in BINARIES.iter().enumerate() {
        println!("\n===== [{}/{}] {bin} =====", i + 1, BINARIES.len());
        let status = Command::new(exe_dir.join(bin)).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("{bin} failed to launch: {e} (build with `cargo build --release -p grafics-bench` first)");
                failures.push(*bin);
            }
        }
    }
    println!(
        "\nsuite finished in {:.1} min; {} of {} binaries succeeded",
        started.elapsed().as_secs_f64() / 60.0,
        BINARIES.len() - failures.len(),
        BINARIES.len()
    );
    if !failures.is_empty() {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
