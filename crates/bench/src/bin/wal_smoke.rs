//! Durable-ingestion smoke: what the absorb WAL costs, printed as JSON
//! for BENCH_*.json trajectories.
//!
//! Three arms absorb the same record stream into the same trained fleet,
//! differing only in the manifest's `DurabilityPolicy`:
//!
//! - **off** — no journalling; the in-memory absorb path is the ceiling.
//! - **fsync64** — group commit, one fsync per 64 appended records. The
//!   acceptance bar: within 0.8× of the `off` arm (the flusher thread
//!   batches appends off the absorb path, so the hot loop only pays an
//!   encode + enqueue).
//! - **fsync1** — fsync every append, the worst-case durability tax.
//!
//! Every arm ends with a `drain_wal` barrier inside the timed window, so
//! acknowledged-but-unflushed appends cannot flatter a durable arm, and
//! every durable arm verifies `wal_stats().appends` equals its accepted
//! count — the journal really saw every acknowledged absorb.
//!
//! ```sh
//! cargo run --release -p grafics-bench --bin wal_smoke [-- --absorbs N]
//! ```

use grafics_bench::{train_serving_fleet, ExperimentConfig};
use grafics_core::{GraficsConfig, GraficsFleet, RetentionPolicy};
use grafics_data::BuildingModel;
use grafics_types::{BuildingId, DurabilityPolicy, SignalRecord};
use std::time::Instant;

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Absorbs `stream` into a fresh copy of the saved fleet under `policy`,
/// returning `(accepted, qps)` with the final WAL drain inside the timed
/// window.
fn run_arm(
    dir: &std::path::Path,
    policy: DurabilityPolicy,
    stream: &[(BuildingId, SignalRecord)],
    seed: u64,
) -> (u64, f64) {
    let fleet = if policy.is_off() {
        GraficsFleet::load_dir(dir).expect("load fleet")
    } else {
        GraficsFleet::recover(dir).expect("recover fleet").0
    };
    let mut accepted = 0u64;
    let t = Instant::now();
    for (i, (building, record)) in stream.iter().enumerate() {
        if fleet
            .absorb_to_durable(*building, record, seed, i as u64)
            .is_ok()
        {
            accepted += 1;
        }
    }
    fleet.drain_wal().expect("WAL drains clean");
    let secs = t.elapsed().as_secs_f64();
    if !policy.is_off() {
        assert_eq!(
            fleet.wal_stats().appends,
            accepted,
            "every acknowledged absorb must be journalled"
        );
    }
    (accepted, accepted as f64 / secs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let absorbs = flag(&args, "--absorbs", 300);
    let buildings = flag(&args, "--buildings", 2);
    let records_per_floor = flag(&args, "--records-per-floor", 40);
    let seed = 2027u64;

    let fleet_models: Vec<BuildingModel> = (0..buildings)
        .map(|i| {
            BuildingModel::office(&format!("wal-{i}"), 3).with_records_per_floor(records_per_floor)
        })
        .collect();
    let cfg = ExperimentConfig {
        threads: 1,
        seed,
        ..Default::default()
    };
    let grafics = GraficsConfig {
        epochs: 30,
        ..GraficsConfig::serving()
    };
    let (mut fleet, tagged) =
        train_serving_fleet(&fleet_models, &cfg, Some(grafics), RetentionPolicy::KeepAll);
    let stream: Vec<(BuildingId, SignalRecord)> = tagged
        .iter()
        .map(|(b, _, r)| (*b, r.clone()))
        .cycle()
        .take(absorbs)
        .collect();

    // One saved directory per arm: each run absorbs into a fresh copy of
    // the same trained fleet, so no arm pays for another's WAL tail.
    let base = std::env::temp_dir().join(format!("grafics-wal-smoke-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let arms = [
        ("off", DurabilityPolicy::Off),
        ("fsync64", DurabilityPolicy::FsyncEveryN(64)),
        ("fsync1", DurabilityPolicy::FsyncEveryN(1)),
    ];
    let mut results = Vec::new();
    for (name, policy) in arms {
        let dir = base.join(name);
        fleet.set_durability(policy);
        fleet.save_dir(&dir).expect("save fleet");
        results.push(run_arm(&dir, policy, &stream, seed));
    }
    std::fs::remove_dir_all(&base).ok();

    let [(accepted_off, qps_off), (accepted_64, qps_64), (accepted_1, qps_1)] = results[..] else {
        unreachable!("three arms");
    };
    // Identical fleet, stream, and RNG indices in every arm: the
    // durability policy must not change *what* absorbs, only how it is
    // made crash-proof.
    assert_eq!(accepted_off, accepted_64, "arms must accept identically");
    assert_eq!(accepted_off, accepted_1, "arms must accept identically");
    assert!(accepted_off * 10 >= absorbs as u64 * 5, "{accepted_off}");

    let ratio_64 = qps_64 / qps_off;
    let ratio_1 = qps_1 / qps_off;
    // Soft floors: the acceptance bar for group commit is 0.8; tripping
    // at 0.6 (and 0.2 for fsync-per-append) catches a real regression
    // without flaking on CI filesystem noise.
    assert!(
        ratio_64 > 0.6,
        "group-commit absorb qps collapsed: {ratio_64:.2} of durability-off"
    );
    assert!(
        ratio_1 > 0.2,
        "fsync-per-append absorb qps collapsed: {ratio_1:.2} of durability-off"
    );

    let arm_off = serde_json::json!({ "qps": qps_off });
    let arm_64 = serde_json::json!({ "qps": qps_64, "ratio_vs_off": ratio_64 });
    let arm_1 = serde_json::json!({ "qps": qps_1, "ratio_vs_off": ratio_1 });
    let payload = serde_json::json!({
        "benchmark": "wal_smoke",
        "corpus": format!("{buildings}x office-3f, {records_per_floor}/floor"),
        "absorbs": absorbs,
        "accepted": accepted_off,
        "off": arm_off,
        "fsync64": arm_64,
        "fsync1": arm_1,
        "acceptance": "fsync64 within 0.8x of off (soft floor 0.6 against CI noise)",
        "method": "same trained fleet saved per arm; same record stream and RNG indices; drain_wal barrier inside every timed window; durable arms assert wal appends == accepted",
    });
    println!("{}", serde_json::to_string_pretty(&payload).unwrap());
}
