//! Fig. 17 — robustness to sparse RF environments: GRAFICS F-scores when
//! only a fraction of the building's MACs remain on-site. Expected shape:
//! > 0.8 F with only 10 % of MACs, > 0.9 from 30–40 %.

use grafics_bench::{fleets, mean_report, run_fleet_custom, write_json, Algo, ExperimentConfig};
use grafics_types::{Dataset, MacAddr};
use rand::seq::SliceRandom;
use std::collections::HashSet;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let fractions = [0.1, 0.2, 0.3, 0.4, 0.55, 0.7, 0.85, 1.0];
    let mut all = Vec::new();
    for (fleet_name, fleet) in fleets(&cfg) {
        println!("\n== {fleet_name} ==");
        println!("{:>6} {:>9} {:>9}", "%MACs", "micro-F", "macro-F");
        for &frac in &fractions {
            let results = run_fleet_custom(
                &fleet,
                &[Algo::Grafics],
                &cfg,
                None,
                &move |ds, cfg, rng| {
                    // Keep a random `frac` of the building's MAC vocabulary
                    // and strip every other reading, dropping records that
                    // become empty.
                    let mut vocab = ds.mac_vocabulary();
                    vocab.shuffle(rng);
                    vocab.truncate(((vocab.len() as f64) * frac).ceil() as usize);
                    let keep: HashSet<MacAddr> = vocab.into_iter().collect();
                    let filtered: Dataset = ds
                        .samples()
                        .iter()
                        .filter_map(|s| {
                            let record = s.record.filtered(|m| keep.contains(&m))?;
                            Some(grafics_types::Sample {
                                record,
                                ..s.clone()
                            })
                        })
                        .collect();
                    if filtered.len() < 20 {
                        return None;
                    }
                    let split = filtered.split(cfg.train_ratio, rng).ok()?;
                    let train = split.train.with_label_budget(cfg.labels_per_floor, rng);
                    Some((train, split.test))
                },
            );
            let s = &mean_report(&results)[0];
            println!(
                "{:>6.0} {:>9.3} {:>9.3}",
                frac * 100.0,
                s.micro.2,
                s.macro_.2
            );
            all.push(serde_json::json!({
                "fleet": fleet_name,
                "mac_fraction": frac,
                "micro_f": s.micro.2,
                "macro_f": s.macro_.2,
            }));
        }
    }
    write_json("fig17_mac_fraction.json", &all);
}
