//! Fig. 11 — micro-/macro-F of all five algorithms as the number of
//! labelled samples per floor grows from 1 to ~10³ (log-scaled in the
//! paper). The expected shape: GRAFICS is high and flat from ~4 labels;
//! Scalable-DNN and SAE need orders of magnitude more labels to catch up;
//! MDS and autoencoder plateau low.

use grafics_bench::{
    fleets, mean_report, print_summaries, run_fleet, write_json, Algo, ExperimentConfig,
};

fn main() {
    let cfg = ExperimentConfig::from_args();
    // Label budgets; capped by records-per-floor × train ratio.
    let budgets: Vec<usize> = [1usize, 2, 4, 10, 40, 100, 400, 1000]
        .into_iter()
        .filter(|&b| b <= (cfg.records_per_floor as f64 * cfg.train_ratio) as usize)
        .collect();
    let algos = Algo::comparison_set();
    let mut all = Vec::new();
    for (fleet_name, fleet) in fleets(&cfg) {
        for &labels in &budgets {
            let c = ExperimentConfig {
                labels_per_floor: labels,
                ..cfg
            };
            let results = run_fleet(&fleet, &algos, &c, None);
            let summaries = mean_report(&results);
            print_summaries(&format!("{fleet_name}, {labels} labels/floor"), &summaries);
            all.push(serde_json::json!({
                "fleet": fleet_name,
                "labels_per_floor": labels,
                "summaries": summaries,
            }));
        }
    }
    write_json("fig11_labels_sweep.json", &all);
}
