//! Fig. 13 — GRAFICS with E-LINE vs GRAFICS with LINE (second-order only),
//! at 4 and 40 labels per floor. Expected shape: at 4 labels LINE is far
//! worse and high-variance; at 40 it narrows the gap; E-LINE is high and
//! stable throughout.

use grafics_bench::{
    fleets, mean_report, print_summaries, run_fleet, write_json, Algo, ExperimentConfig,
};

fn main() {
    let cfg = ExperimentConfig::from_args();
    let algos = [Algo::Grafics, Algo::GraficsLine];
    let mut all = Vec::new();
    for (fleet_name, fleet) in fleets(&cfg) {
        for labels in [4usize, 40] {
            let c = ExperimentConfig {
                labels_per_floor: labels,
                ..cfg
            };
            let results = run_fleet(&fleet, &algos, &c, None);
            let summaries = mean_report(&results);
            print_summaries(&format!("{fleet_name}, #label = {labels}"), &summaries);
            all.push(serde_json::json!({
                "fleet": fleet_name,
                "labels_per_floor": labels,
                "summaries": summaries,
            }));
        }
    }
    write_json("fig13_eline_vs_line.json", &all);
}
