//! Fleet-serving smoke: absorb+serve concurrency, per-query cost across
//! fleet sizes, and retention-bounded memory, printed as JSON for
//! BENCH_*.json trajectories.
//!
//! Three arms:
//!
//! - **concurrency** — one shard serves a fixed query set twice: idle,
//!   and with the write side absorbing a crowdsourced stream between
//!   queries. Reads go to the published snapshot, writes to the
//!   double-buffered write model, so the two never contend; only the
//!   per-query serve time is accumulated (absorbs are untimed), which
//!   isolates contention from the single-core timesharing this container
//!   would otherwise measure. The ratio should sit within noise of 1.
//! - **scaling** — routed serving through 1/2/4-building fleets
//!   ([`grafics_bench::run_fleet_serving`]): per-query cost should stay
//!   flat in building count (routing is O(readings · buildings), dwarfed
//!   by the O(deg · samples) embedding refinement).
//! - **retention** — a `FifoBudget(B)` shard absorbs 2·B records; the
//!   absorbed-resident count must end at exactly B, and the peak is
//!   reported alongside.
//!
//! ```sh
//! cargo run --release -p grafics-bench --bin fleet_smoke [-- --queries N --budget N]
//! ```

use grafics_bench::{run_fleet_serving, ExperimentConfig};
use grafics_core::{Grafics, GraficsConfig, RetentionPolicy, Shard};
use grafics_data::BuildingModel;
use grafics_types::{BuildingId, SignalRecord};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Serves every query on one session, accumulating only the serve time;
/// `between` runs untimed between queries (e.g. absorbing the stream).
fn timed_serve(
    shard: &Shard,
    queries: &[SignalRecord],
    mut between: impl FnMut(usize),
) -> (usize, f64) {
    let mut session = shard.server();
    let mut served = 0usize;
    let mut secs = 0.0f64;
    for (i, q) in queries.iter().enumerate() {
        between(i);
        let mut rng = ChaCha8Rng::seed_from_u64(i as u64);
        let t = Instant::now();
        served += usize::from(session.infer(q, &mut rng).is_ok());
        secs += t.elapsed().as_secs_f64();
    }
    (served, secs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries = flag(&args, "--queries", 150);
    let budget = flag(&args, "--budget", 40);
    let records_per_floor = flag(&args, "--records-per-floor", 40);

    let mut rng = ChaCha8Rng::seed_from_u64(2026);
    let train = BuildingModel::office("fleet-smoke", 3)
        .with_records_per_floor(60)
        .simulate(&mut rng)
        .with_label_budget(4, &mut rng);
    let config = GraficsConfig {
        epochs: 30,
        ..GraficsConfig::serving()
    };
    let model = Grafics::train(&train, &config, &mut rng).unwrap();

    let query_set: Vec<SignalRecord> = BuildingModel::office("fleet-smoke", 3)
        .with_records_per_floor(queries.div_ceil(3).max(1))
        .simulate(&mut rng)
        .samples()
        .iter()
        .take(queries)
        .map(|s| s.record.clone())
        .collect();
    let stream: Vec<SignalRecord> = BuildingModel::office("fleet-smoke", 3)
        .with_records_per_floor((queries + 2 * budget).div_ceil(3) + 8)
        .simulate(&mut rng)
        .samples()
        .iter()
        .map(|s| s.record.clone())
        .collect();

    // Arm 1: absorb+serve concurrency on one double-buffered shard.
    let shard = Shard::new(BuildingId(0), model.clone(), RetentionPolicy::KeepAll);
    let (served_idle, idle_secs) = timed_serve(&shard, &query_set, |_| {});
    let mut absorb_rng = ChaCha8Rng::seed_from_u64(7);
    let mut absorbed = 0usize;
    let (served_busy, busy_secs) = timed_serve(&shard, &query_set, |i| {
        if let Some(r) = stream.get(i) {
            absorbed += usize::from(shard.absorb(r, &mut absorb_rng).is_ok());
        }
    });
    assert_eq!(
        served_idle, served_busy,
        "the frozen snapshot must serve the same set while absorbing"
    );
    let idle_qps = queries as f64 / idle_secs;
    let absorbing_qps = queries as f64 / busy_secs;
    let epoch = shard.publish();
    let concurrency = serde_json::json!({
        "queries": queries,
        "served": served_idle,
        "idle_qps": idle_qps,
        "absorbing_qps": absorbing_qps,
        "ratio": absorbing_qps / idle_qps,
        "absorbed_during_serving": absorbed,
        "published_epoch": epoch,
        "method": "per-query serve time summed; interleaved absorbs untimed (write side is lock-disjoint from the published snapshot)",
    });

    // Arm 2: per-query cost across fleet sizes.
    let mut scaling = Vec::new();
    for n in [1usize, 2, 4] {
        let fleet: Vec<BuildingModel> = (0..n)
            .map(|i| {
                BuildingModel::office(&format!("scale-{i}"), 3)
                    .with_records_per_floor(records_per_floor)
            })
            .collect();
        let cfg = ExperimentConfig {
            threads: 1,
            seed: 2022,
            ..Default::default()
        };
        let summary = run_fleet_serving(&fleet, &cfg, Some(config));
        scaling.push(serde_json::json!({
            "buildings": summary.buildings,
            "queries": summary.queries,
            "served": summary.served,
            "routed_home": summary.routed_home,
            "floor_accuracy": summary.floor_accuracy,
            "qps": summary.qps,
            "us_per_query": summary.us_per_query,
        }));
    }

    // Arm 3: retention bounds resident memory.
    let shard = Shard::new(BuildingId(0), model, RetentionPolicy::FifoBudget(budget));
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut peak_resident = 0usize;
    let mut absorbs = 0usize;
    let mut i = 0usize;
    while absorbs < 2 * budget {
        let r = &stream[i % stream.len()];
        i += 1;
        absorbs += usize::from(shard.absorb(r, &mut rng).is_ok());
        peak_resident = peak_resident.max(shard.stats().resident_records);
    }
    let stats = shard.stats();
    assert!(
        stats.absorbed_resident <= budget,
        "retention violated: {} > {budget}",
        stats.absorbed_resident
    );
    let retention = serde_json::json!({
        "budget": budget,
        "absorbs": absorbs,
        "absorbed_resident": stats.absorbed_resident,
        "peak_resident_records": peak_resident,
        "train_records": train.len(),
    });

    let payload = serde_json::json!({
        "benchmark": "fleet_smoke",
        "corpus": "office-3f shards",
        "threads": 1,
        "concurrency": concurrency,
        "scaling": scaling,
        "retention": retention,
    });
    println!("{}", serde_json::to_string_pretty(&payload).unwrap());
}
