//! Accuracy ablation of the clustering stage: the one-label-per-cluster
//! merge constraint (on/off) and the linkage criterion (average — the
//! paper's Eq. (11) — vs single vs complete).

use grafics_bench::{fleets, mean_report, run_fleet, write_json, Algo, ExperimentConfig};
use grafics_cluster::Linkage;
use grafics_core::GraficsConfig;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let variants: Vec<(&str, GraficsConfig)> = vec![
        ("average+constrained", GraficsConfig::default()),
        (
            "average+unconstrained",
            GraficsConfig {
                constrained_clustering: false,
                ..Default::default()
            },
        ),
        (
            "single+constrained",
            GraficsConfig {
                linkage: Linkage::Single,
                ..Default::default()
            },
        ),
        (
            "complete+constrained",
            GraficsConfig {
                linkage: Linkage::Complete,
                ..Default::default()
            },
        ),
    ];
    let mut all = Vec::new();
    for (fleet_name, fleet) in fleets(&cfg) {
        println!("\n== {fleet_name} ==");
        println!(
            "{:<24} {:>9} {:>9} {:>9}",
            "variant", "micro-F", "macro-F", "±std"
        );
        for (name, over) in &variants {
            let results = run_fleet(&fleet, &[Algo::Grafics], &cfg, Some(*over));
            let s = &mean_report(&results)[0];
            println!(
                "{name:<24} {:>9.3} {:>9.3} {:>9.3}",
                s.micro.2, s.macro_.2, s.micro_f_std
            );
            all.push(serde_json::json!({
                "fleet": fleet_name,
                "variant": name,
                "micro_f": s.micro.2,
                "macro_f": s.macro_.2,
                "std": s.micro_f_std,
            }));
        }
    }
    write_json("ablation_clustering.json", &all);
}
