//! CLI configuration shared by all figure binaries.

use serde::{Deserialize, Serialize};

/// Experiment scale knobs. Defaults give laptop-scale runtimes; `--full`
/// switches to the paper-scale protocol (204 buildings, 1 000 records per
/// floor, 10 runs), which matches §VI-A but takes hours on a laptop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Number of Microsoft-fleet buildings to simulate.
    pub buildings: usize,
    /// Crowdsourced records per floor.
    pub records_per_floor: usize,
    /// Independent repetitions (different seeds) averaged per point.
    pub runs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Train fraction (paper: 0.7).
    pub train_ratio: f64,
    /// Labelled samples per floor in training (paper default: 4).
    pub labels_per_floor: usize,
    /// Worker threads for fleet-parallel evaluation.
    pub threads: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            buildings: 6,
            records_per_floor: 100,
            runs: 3,
            seed: 2022,
            train_ratio: 0.7,
            labels_per_floor: 4,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get().min(16)),
        }
    }
}

impl ExperimentConfig {
    /// Parses CLI arguments: `--full`, `--buildings N`,
    /// `--records-per-floor N`, `--runs N`, `--seed N`, `--labels N`,
    /// `--threads N`. Unknown flags abort with a usage message.
    #[must_use]
    pub fn from_args() -> Self {
        let mut cfg = ExperimentConfig::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        fn parse_usize(args: &[String], i: usize, flag: &str) -> usize {
            args.get(i)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(flag))
        }
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => {
                    cfg.buildings = 204;
                    cfg.records_per_floor = 1000;
                    cfg.runs = 10;
                }
                "--buildings" => {
                    i += 1;
                    cfg.buildings = parse_usize(&args, i, "--buildings");
                }
                "--records-per-floor" => {
                    i += 1;
                    cfg.records_per_floor = parse_usize(&args, i, "--records-per-floor");
                }
                "--runs" => {
                    i += 1;
                    cfg.runs = parse_usize(&args, i, "--runs");
                }
                "--labels" => {
                    i += 1;
                    cfg.labels_per_floor = parse_usize(&args, i, "--labels");
                }
                "--threads" => {
                    i += 1;
                    cfg.threads = parse_usize(&args, i, "--threads");
                }
                "--seed" => {
                    i += 1;
                    cfg.seed = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed"));
                }
                other => usage(other),
            }
            i += 1;
        }
        cfg
    }
}

fn usage(flag: &str) -> ! {
    eprintln!(
        "unrecognised or malformed flag {flag}\n\
         usage: [--full] [--buildings N] [--records-per-floor N] [--runs N] \
         [--labels N] [--seed N] [--threads N]"
    );
    std::process::exit(2)
}
