//! Fleet-parallel experiment execution and result aggregation — offline
//! training sweeps ([`run_fleet`]) and the routed serving arm
//! ([`run_fleet_serving`]).

use crate::{train_and_score, Algo, ExperimentConfig};
use grafics_core::{Grafics, GraficsConfig, GraficsFleet, RetentionPolicy};
use grafics_data::BuildingModel;
use grafics_metrics::ClassificationReport;
use grafics_types::{BuildingId, FloorId, SignalRecord};
use parking_lot::Mutex;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// One (building, run, algorithm) evaluation outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BuildingResult {
    /// Building name.
    pub building: String,
    /// Repetition index.
    pub run: usize,
    /// Algorithm name.
    pub algo: String,
    /// The classification report.
    pub report: ClassificationReport,
}

/// Aggregated metrics for one algorithm across buildings and runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlgoSummary {
    /// Algorithm name.
    pub algo: String,
    /// Mean micro precision / recall / F.
    pub micro: (f64, f64, f64),
    /// Mean macro precision / recall / F.
    pub macro_: (f64, f64, f64),
    /// Standard deviation of micro-F across (building, run) pairs.
    pub micro_f_std: f64,
    /// Number of (building, run) points aggregated.
    pub points: usize,
}

/// Prepares one evaluation's `(train, test)` pair from a freshly simulated
/// corpus. Returning `None` skips the evaluation.
pub type PrepareFn<'a> = &'a (dyn Fn(
    grafics_types::Dataset,
    &ExperimentConfig,
    &mut ChaCha8Rng,
) -> Option<(grafics_types::Dataset, grafics_types::Dataset)>
         + Sync);

/// Runs every `(building, run, algo)` combination across a worker pool and
/// returns the raw per-building results.
///
/// Each evaluation: simulate the building corpus, 70/30 split, hide labels
/// down to `labels_per_floor`, train, score on the held-out 30 %.
#[must_use]
pub fn run_fleet(
    fleet: &[BuildingModel],
    algos: &[Algo],
    cfg: &ExperimentConfig,
    grafics_override: Option<GraficsConfig>,
) -> Vec<BuildingResult> {
    run_fleet_custom(fleet, algos, cfg, grafics_override, &|ds, cfg, rng| {
        // Standard pre-processing: drop ephemeral MACs (min support 2) —
        // phone hotspots seen by a single record carry no information.
        let ds = ds.filter_rare_macs(2);
        let split = ds.split(cfg.train_ratio, rng).ok()?;
        let train = split.train.with_label_budget(cfg.labels_per_floor, rng);
        Some((train, split.test))
    })
}

/// Like [`run_fleet`] but with a caller-supplied preparation step, used by
/// experiments that transform the corpus first (training-ratio sweeps,
/// MAC-removal robustness, …).
#[must_use]
pub fn run_fleet_custom(
    fleet: &[BuildingModel],
    algos: &[Algo],
    cfg: &ExperimentConfig,
    grafics_override: Option<GraficsConfig>,
    prepare: PrepareFn<'_>,
) -> Vec<BuildingResult> {
    // Work items: (building index, run index).
    let jobs: Vec<(usize, usize)> = (0..fleet.len())
        .flat_map(|b| (0..cfg.runs).map(move |r| (b, r)))
        .collect();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<BuildingResult>> = Mutex::new(Vec::new());

    let workers = cfg.threads.clamp(1, jobs.len().max(1));
    // The same rayon scoped pool the Hogwild trainer and `serve_batch`
    // fan out on — one worker-pool substrate across the workspace.
    rayon::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(b, run)) = jobs.get(j) else { break };
                let building = &fleet[b];
                // Deterministic per-(building, run) seed.
                let seed = cfg
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((b as u64) << 32)
                    .wrapping_add(run as u64);
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let ds = building.simulate(&mut rng);
                let Some((train, test)) = prepare(ds, cfg, &mut rng) else {
                    continue;
                };
                for &algo in algos {
                    let report = train_and_score(algo, &train, &test, grafics_override, &mut rng);
                    results.lock().push(BuildingResult {
                        building: building.name.clone(),
                        run,
                        algo: algo.name().to_owned(),
                        report,
                    });
                }
            });
        }
    });
    results.into_inner()
}

/// Aggregates raw results into one summary per algorithm (insertion order
/// of first appearance).
#[must_use]
pub fn mean_report(results: &[BuildingResult]) -> Vec<AlgoSummary> {
    let mut order: Vec<String> = Vec::new();
    for r in results {
        if !order.contains(&r.algo) {
            order.push(r.algo.clone());
        }
    }
    order
        .into_iter()
        .map(|algo| {
            let points: Vec<&ClassificationReport> = results
                .iter()
                .filter(|r| r.algo == algo)
                .map(|r| &r.report)
                .collect();
            let n = points.len().max(1) as f64;
            let mean = |f: &dyn Fn(&ClassificationReport) -> f64| {
                points.iter().map(|r| f(r)).sum::<f64>() / n
            };
            let micro_f_mean = mean(&|r| r.micro_f);
            let var = points
                .iter()
                .map(|r| (r.micro_f - micro_f_mean).powi(2))
                .sum::<f64>()
                / n;
            AlgoSummary {
                algo,
                micro: (mean(&|r| r.micro_p), mean(&|r| r.micro_r), micro_f_mean),
                macro_: (
                    mean(&|r| r.macro_p),
                    mean(&|r| r.macro_r),
                    mean(&|r| r.macro_f),
                ),
                micro_f_std: var.sqrt(),
                points: points.len(),
            }
        })
        .collect()
}

/// Outcome of serving a routed query stream through a trained
/// [`GraficsFleet`] (see [`run_fleet_serving`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetServeSummary {
    /// Shards in the fleet.
    pub buildings: usize,
    /// Held-out queries streamed through the router.
    pub queries: usize,
    /// Queries that routed somewhere and embedded successfully.
    pub served: usize,
    /// Served queries routed to the building they were collected in.
    pub routed_home: usize,
    /// Floor accuracy over the served queries.
    pub floor_accuracy: f64,
    /// Served queries per second (single worker, so points are
    /// comparable across fleet sizes; the wall clock also covers routing
    /// the unrouted remainder, which skips embedding).
    pub qps: f64,
    /// Mean microseconds per *served* query.
    pub us_per_query: f64,
}

/// Trains one GRAFICS shard per building of `fleet` (parallel across
/// `cfg.threads` workers, deterministic per-building seeds) and returns
/// the assembled serving fleet plus every building's held-out queries
/// tagged with their true building and floor.
#[must_use]
pub fn train_serving_fleet(
    fleet: &[BuildingModel],
    cfg: &ExperimentConfig,
    grafics_override: Option<GraficsConfig>,
    retention: RetentionPolicy,
) -> (GraficsFleet, Vec<(BuildingId, FloorId, SignalRecord)>) {
    /// One worker's output: (building index, shard model, held-out
    /// `(floor, record)` queries).
    type TrainedShard = (usize, Grafics, Vec<(FloorId, SignalRecord)>);
    let config = grafics_override.unwrap_or_default();
    let next = AtomicUsize::new(0);
    let trained: Mutex<Vec<TrainedShard>> = Mutex::new(Vec::new());
    let workers = cfg.threads.clamp(1, fleet.len().max(1));
    rayon::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let b = next.fetch_add(1, Ordering::Relaxed);
                let Some(building) = fleet.get(b) else { break };
                // The same per-(building, run 0) seed stream as `run_fleet`.
                let seed = cfg
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add((b as u64) << 32);
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let ds = building.simulate(&mut rng).filter_rare_macs(2);
                let Ok(split) = ds.split(cfg.train_ratio, &mut rng) else {
                    continue;
                };
                let train = split
                    .train
                    .with_label_budget(cfg.labels_per_floor, &mut rng);
                let Ok(model) = Grafics::train(&train, &config, &mut rng) else {
                    continue;
                };
                let queries = split
                    .test
                    .samples()
                    .iter()
                    .map(|s| (s.ground_truth, s.record.clone()))
                    .collect();
                trained.lock().push((b, model, queries));
            });
        }
    });
    let mut trained = trained.into_inner();
    trained.sort_by_key(|&(b, _, _)| b);
    let mut out = GraficsFleet::new();
    out.set_retention(retention);
    let mut queries = Vec::new();
    for (b, model, qs) in trained {
        let id = BuildingId(b as u32);
        out.add_shard(id, model).expect("ids unique");
        for (floor, record) in qs {
            queries.push((id, floor, record));
        }
    }
    (out, queries)
}

/// The serving arm of the fleet harness: trains a shard per building,
/// then streams every building's held-out records through the routed
/// fleet ([`GraficsFleet::serve_batch`], one worker so throughput points
/// are comparable across fleet sizes) and scores routing and floor
/// accuracy.
#[must_use]
pub fn run_fleet_serving(
    fleet: &[BuildingModel],
    cfg: &ExperimentConfig,
    grafics_override: Option<GraficsConfig>,
) -> FleetServeSummary {
    let (serving, tagged) =
        train_serving_fleet(fleet, cfg, grafics_override, RetentionPolicy::KeepAll);
    let records: Vec<SignalRecord> = tagged.iter().map(|(_, _, r)| r.clone()).collect();
    let t = Instant::now();
    let predictions = serving.serve_batch(&records, cfg.seed, 1);
    let secs = t.elapsed().as_secs_f64();
    let (mut served, mut routed_home, mut hits) = (0usize, 0usize, 0usize);
    for ((home, truth, _), pred) in tagged.iter().zip(&predictions) {
        let Some(p) = pred else { continue };
        served += 1;
        routed_home += usize::from(p.building == *home);
        hits += usize::from(p.floor == *truth);
    }
    FleetServeSummary {
        buildings: serving.len(),
        queries: records.len(),
        served,
        routed_home,
        floor_accuracy: if served == 0 {
            0.0
        } else {
            hits as f64 / served as f64
        },
        qps: if secs > 0.0 {
            served as f64 / secs
        } else {
            0.0
        },
        us_per_query: 1e6 * secs / served.max(1) as f64,
    }
}

/// Serialises any result payload as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(name: &str, payload: &T) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("warning: cannot create results/; skipping JSON output");
        return;
    }
    let path = dir.join(name);
    match serde_json::to_string_pretty(payload) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialisation failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_run_produces_every_combination() {
        let fleet = vec![BuildingModel::office("a", 2).with_records_per_floor(25)];
        let cfg = ExperimentConfig {
            buildings: 1,
            records_per_floor: 25,
            runs: 2,
            threads: 2,
            ..Default::default()
        };
        let results = run_fleet(&fleet, &[Algo::Grafics, Algo::MatrixProx], &cfg, None);
        assert_eq!(results.len(), 4); // 1 building × 2 runs × 2 algos
        let summaries = mean_report(&results);
        assert_eq!(summaries.len(), 2);
        for s in &summaries {
            assert_eq!(s.points, 2);
            assert!(s.micro.2 >= 0.0 && s.micro.2 <= 1.0);
        }
    }

    #[test]
    fn serving_arm_routes_and_scores() {
        let fleet = vec![
            BuildingModel::office("serve-a", 2).with_records_per_floor(30),
            BuildingModel::office("serve-b", 2).with_records_per_floor(30),
        ];
        let cfg = ExperimentConfig {
            threads: 2,
            ..Default::default()
        };
        let fast = GraficsConfig {
            epochs: 20,
            ..GraficsConfig::fast()
        };
        let summary = run_fleet_serving(&fleet, &cfg, Some(fast));
        assert_eq!(summary.buildings, 2);
        assert!(summary.queries > 0);
        assert!(summary.served * 10 >= summary.queries * 9, "{summary:?}");
        // MAC namespaces are disjoint up to noise: routing must be near
        // perfect, and floor accuracy well above chance.
        assert!(
            summary.routed_home * 20 >= summary.served * 19,
            "{summary:?}"
        );
        assert!(summary.floor_accuracy > 0.6, "{summary:?}");
        assert!(summary.qps > 0.0 && summary.us_per_query > 0.0);
    }

    #[test]
    fn per_building_seeds_are_deterministic() {
        let fleet = vec![BuildingModel::office("d", 2).with_records_per_floor(20)];
        let cfg = ExperimentConfig {
            runs: 1,
            threads: 1,
            ..Default::default()
        };
        let r1 = run_fleet(&fleet, &[Algo::MatrixProx], &cfg, None);
        let r2 = run_fleet(&fleet, &[Algo::MatrixProx], &cfg, None);
        assert_eq!(r1[0].report.micro_f, r2[0].report.micro_f);
    }
}
