//! Criterion benchmarks for the online serving path: per-query `infer`
//! latency vs graph size (incremental sampler vs the historical
//! rebuild-per-query behaviour), and batch serving serial vs
//! server-parallel on the worker pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grafics_core::{Grafics, GraficsConfig};
use grafics_data::BuildingModel;
use grafics_embed::{ElineTrainer, NegativeSampler, OnlineScratch};
use grafics_types::SignalRecord;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn trained(records_per_floor: usize) -> (Grafics, Vec<SignalRecord>) {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let ds = BuildingModel::office("bench-online", 3)
        .with_records_per_floor(records_per_floor)
        .simulate(&mut rng);
    let split = ds.split(0.7, &mut rng).unwrap();
    let train = split.train.with_label_budget(4, &mut rng);
    let cfg = GraficsConfig {
        epochs: 15,
        ..GraficsConfig::serving()
    };
    let model = Grafics::train(&train, &cfg, &mut rng).unwrap();
    let queries: Vec<SignalRecord> = split
        .test
        .samples()
        .iter()
        .take(64)
        .map(|s| s.record.clone())
        .collect();
    (model, queries)
}

/// Per-query latency against graph size: the shared incremental sampler
/// vs paying the O(n) negative-distribution rebuild every query.
fn bench_per_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("online/per_query");
    group.sample_size(10);
    for records_per_floor in [60usize, 240] {
        let (model, queries) = trained(records_per_floor);
        let nodes = model.graph().node_capacity();

        group.bench_with_input(BenchmarkId::new("incremental", nodes), &nodes, |b, _| {
            let mut server = model.server();
            let mut i = 0usize;
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(i as u64);
                i += 1;
                black_box(server.infer(black_box(&queries[i % queries.len()]), &mut rng))
            })
        });

        let exponent = model.negative_sampler().exponent();
        let trainer = ElineTrainer::new(model.config().embedding());
        group.bench_with_input(
            BenchmarkId::new("rebuild_per_query", nodes),
            &nodes,
            |b, _| {
                let mut scratch = OnlineScratch::new();
                let mut i = 0usize;
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(i as u64);
                    i += 1;
                    let rebuilt = NegativeSampler::from_graph(model.graph(), exponent);
                    black_box(
                        trainer
                            .embed_query(
                                model.graph(),
                                model.embeddings(),
                                black_box(&queries[i % queries.len()]),
                                &rebuilt,
                                &mut scratch,
                                &mut rng,
                            )
                            .is_ok(),
                    )
                })
            },
        );
    }
    group.finish();
}

/// A 64-record batch served sequentially vs on the worker pool.
fn bench_serve_batch(c: &mut Criterion) {
    let (model, queries) = trained(120);
    let mut group = c.benchmark_group("online/serve_batch");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("batch64_threads", threads),
            &threads,
            |b, &t| b.iter(|| black_box(model.serve_batch(black_box(&queries), 5, t))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_per_query, bench_serve_batch);
criterion_main!(benches);
