//! Serial-vs-parallel Criterion benchmarks for the offline hot path:
//! E-LINE training (`embed/train_parallel`) and the O(n²) dissimilarity
//! matrix seeding the constrained clustering
//! (`cluster/dissimilarity_parallel`). Each group benchmarks the serial
//! baseline next to the multi-threaded variant so the speedup can be read
//! directly off adjacent lines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grafics_cluster::dissimilarity_matrix;
use grafics_data::BuildingModel;
use grafics_embed::{ElineTrainer, EmbeddingConfig};
use grafics_graph::{BipartiteGraph, NodeIdx, WeightFunction};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn office_graph(records_per_floor: usize) -> BipartiteGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let ds = BuildingModel::office("bench-par", 3)
        .with_records_per_floor(records_per_floor)
        .simulate(&mut rng);
    BipartiteGraph::from_dataset(&ds, WeightFunction::default())
}

fn bench_train_parallel(c: &mut Criterion) {
    let graph = office_graph(60);
    let mut group = c.benchmark_group("embed/train_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let cfg = EmbeddingConfig {
            epochs: 15,
            threads,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("eline_threads", threads),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(7);
                    ElineTrainer::new(*cfg)
                        .train(black_box(&graph), &mut rng)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_dissimilarity_parallel(c: &mut Criterion) {
    // Embedding-shaped points: dim 8, a few hundred records.
    let graph = office_graph(100);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let cfg = EmbeddingConfig {
        epochs: 5,
        ..Default::default()
    };
    let model = ElineTrainer::new(cfg).train(&graph, &mut rng).unwrap();
    let mut points = grafics_types::RowMatrix::with_capacity(graph.node_capacity(), model.dim());
    for i in 0..graph.node_capacity() {
        points.push_row_widen(model.ego(NodeIdx(i as u32)));
    }

    let mut group = c.benchmark_group("cluster/dissimilarity_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("pairwise_l2", threads),
            &threads,
            |b, &t| b.iter(|| dissimilarity_matrix(black_box(&points), t)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_train_parallel, bench_dissimilarity_parallel);
criterion_main!(benches);
