//! Criterion micro-benchmarks of every pipeline stage: graph build,
//! alias sampling, E-LINE training, constrained clustering, and the
//! online-inference latency the paper claims is "computationally
//! inexpensive and can be done in real-time" (§V-A).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use grafics_cluster::{ClusterModel, ClusteringConfig};
use grafics_core::{Grafics, GraficsConfig};
use grafics_data::BuildingModel;
use grafics_embed::{ElineTrainer, EmbeddingConfig};
use grafics_graph::{AliasTable, BipartiteGraph, WeightFunction};
use grafics_types::{Dataset, FloorId, RecordId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn corpus(records_per_floor: usize) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    BuildingModel::office("bench", 3)
        .with_records_per_floor(records_per_floor)
        .simulate(&mut rng)
}

fn bench_graph_build(c: &mut Criterion) {
    let ds = corpus(100);
    c.bench_function("graph/build_300_records", |b| {
        b.iter(|| BipartiteGraph::from_dataset(black_box(&ds), WeightFunction::default()))
    });
}

fn bench_alias_sampling(c: &mut Criterion) {
    let weights: Vec<f64> = (1..=10_000).map(|i| (i % 97 + 1) as f64).collect();
    let table = AliasTable::new(&weights).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    c.bench_function("alias/sample_10k_outcomes", |b| {
        b.iter(|| table.sample(&mut rng))
    });
}

fn bench_embedding_training(c: &mut Criterion) {
    let ds = corpus(60);
    let graph = BipartiteGraph::from_dataset(&ds, WeightFunction::default());
    let mut group = c.benchmark_group("embed");
    group.sample_size(10);
    for epochs in [5usize, 20] {
        group.bench_with_input(
            BenchmarkId::new("eline_train", epochs),
            &epochs,
            |b, &epochs| {
                b.iter_batched(
                    || ChaCha8Rng::seed_from_u64(7),
                    |mut rng| {
                        let cfg = EmbeddingConfig {
                            epochs,
                            ..Default::default()
                        };
                        ElineTrainer::new(cfg)
                            .train(black_box(&graph), &mut rng)
                            .unwrap()
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut group = c.benchmark_group("cluster");
    group.sample_size(10);
    for n in [200usize, 600] {
        // n points in 8-D around 3 floor centroids, 4 labels per floor.
        let points: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let f = (i % 3) as f64 * 10.0;
                (0..8)
                    .map(|_| f + rand::Rng::gen_range(&mut rng, -1.0..1.0))
                    .collect()
            })
            .collect();
        let points = grafics_types::RowMatrix::from_rows(&points);
        let labels: Vec<Option<FloorId>> = (0..n)
            .map(|i| {
                if i < 12 {
                    Some(FloorId((i % 3) as i16))
                } else {
                    None
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("constrained_average", n), &n, |b, _| {
            b.iter(|| {
                ClusterModel::fit(
                    black_box(&points),
                    black_box(&labels),
                    &ClusteringConfig::default(),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_online_inference(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let ds = corpus(80);
    let split = ds.split(0.7, &mut rng).unwrap();
    let train = split.train.with_label_budget(4, &mut rng);
    let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
    let test_records: Vec<_> = split
        .test
        .samples()
        .iter()
        .map(|s| s.record.clone())
        .collect();
    let mut group = c.benchmark_group("online");
    group.sample_size(20);
    group.bench_function("infer_one_record", |b| {
        let mut i = 0;
        b.iter_batched(
            || (model.clone(), ChaCha8Rng::seed_from_u64(11)),
            |(mut m, mut rng)| {
                let rec = &test_records[i % test_records.len()];
                i += 1;
                m.infer(black_box(rec), &mut rng).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_full_offline_training(c: &mut Criterion) {
    let ds = corpus(60);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("offline_train_180_records", |b| {
        b.iter_batched(
            || {
                let mut rng = ChaCha8Rng::seed_from_u64(13);
                (ds.with_label_budget(4, &mut rng), rng)
            },
            |(train, mut rng)| Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_record_ops(c: &mut Criterion) {
    let ds = corpus(60);
    let graph = BipartiteGraph::from_dataset(&ds, WeightFunction::default());
    let extra = ds.samples()[0].record.clone();
    c.bench_function("graph/add_remove_record", |b| {
        b.iter_batched(
            || graph.clone(),
            |mut g| {
                let rid = g.add_record(black_box(&extra));
                g.remove_record(rid).unwrap();
                g
            },
            BatchSize::SmallInput,
        )
    });
    let node0 = graph.record_node(RecordId(0)).unwrap();
    c.bench_function("graph/neighbors_lookup", |b| {
        b.iter(|| black_box(graph.neighbors(black_box(node0)).len()))
    });
}

criterion_group!(
    benches,
    bench_graph_build,
    bench_alias_sampling,
    bench_embedding_training,
    bench_clustering,
    bench_online_inference,
    bench_full_offline_training,
    bench_record_ops,
);
criterion_main!(benches);
