//! Ablation benches for the design choices DESIGN.md calls out: the
//! E-LINE mirrored objective vs LINE, the negative-sample count K, the
//! weight function, and the clustering linkage. These measure *runtime*
//! cost; the *accuracy* ablations live in the fig13/fig16 binaries and the
//! `paper_claims` integration tests.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use grafics_cluster::{ClusterModel, ClusteringConfig, Linkage};
use grafics_data::BuildingModel;
use grafics_embed::{ElineTrainer, EmbeddingConfig, Objective};
use grafics_graph::{BipartiteGraph, WeightFunction};
use grafics_types::FloorId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn graph() -> BipartiteGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let ds = BuildingModel::office("abl", 3)
        .with_records_per_floor(50)
        .simulate(&mut rng);
    BipartiteGraph::from_dataset(&ds, WeightFunction::default())
}

/// E-LINE does two SGD steps per direction where LINE does one; this
/// quantifies the constant-factor cost of the mirrored objective.
fn bench_objective(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("ablation_objective");
    group.sample_size(10);
    for objective in [
        Objective::LineFirst,
        Objective::LineSecond,
        Objective::ELine,
    ] {
        group.bench_with_input(
            BenchmarkId::new("train", format!("{objective}")),
            &objective,
            |b, &objective| {
                b.iter_batched(
                    || ChaCha8Rng::seed_from_u64(1),
                    |mut rng| {
                        let cfg = EmbeddingConfig {
                            objective,
                            epochs: 10,
                            ..Default::default()
                        };
                        ElineTrainer::new(cfg)
                            .train(black_box(&g), &mut rng)
                            .unwrap()
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

/// Cost of the negative-sample count K (Eq. 10).
fn bench_negatives(c: &mut Criterion) {
    let g = graph();
    let mut group = c.benchmark_group("ablation_negatives");
    group.sample_size(10);
    for k in [1usize, 5, 15] {
        group.bench_with_input(BenchmarkId::new("train_k", k), &k, |b, &k| {
            b.iter_batched(
                || ChaCha8Rng::seed_from_u64(2),
                |mut rng| {
                    let cfg = EmbeddingConfig {
                        negatives: k,
                        epochs: 10,
                        ..Default::default()
                    };
                    ElineTrainer::new(cfg)
                        .train(black_box(&g), &mut rng)
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Weight functions cost the same to evaluate; this is a sanity bench that
/// the offset choice (accuracy winner, Fig. 16) is also not slower.
fn bench_weight_functions(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let ds = BuildingModel::office("wf", 2)
        .with_records_per_floor(50)
        .simulate(&mut rng);
    let mut group = c.benchmark_group("ablation_weight_fn");
    for (name, wf) in [
        ("offset", WeightFunction::offset_default()),
        ("power", WeightFunction::Power),
    ] {
        group.bench_with_input(BenchmarkId::new("graph_build", name), &wf, |b, &wf| {
            b.iter(|| BipartiteGraph::from_dataset(black_box(&ds), wf))
        });
    }
    group.finish();
}

/// Linkage choice: average (the paper's Eq. 11) vs single vs complete.
fn bench_linkage(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let n = 300;
    let points: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let f = (i % 3) as f64 * 10.0;
            (0..8)
                .map(|_| f + rand::Rng::gen_range(&mut rng, -1.0..1.0))
                .collect()
        })
        .collect();
    let points = grafics_types::RowMatrix::from_rows(&points);
    let labels: Vec<Option<FloorId>> = (0..n)
        .map(|i| {
            if i < 12 {
                Some(FloorId((i % 3) as i16))
            } else {
                None
            }
        })
        .collect();
    let mut group = c.benchmark_group("ablation_linkage");
    group.sample_size(10);
    for linkage in [Linkage::Average, Linkage::Single, Linkage::Complete] {
        group.bench_with_input(
            BenchmarkId::new("fit", format!("{linkage:?}")),
            &linkage,
            |b, &linkage| {
                let cfg = ClusteringConfig {
                    linkage,
                    ..Default::default()
                };
                b.iter(|| ClusterModel::fit(black_box(&points), black_box(&labels), &cfg).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_objective,
    bench_negatives,
    bench_weight_functions,
    bench_linkage
);
criterion_main!(benches);
