//! Criterion benches for the unified math-kernel layer
//! (`grafics_types::kernels`): the f32 dot/axpy family across the
//! monomorphised and lane-blocked variants, and the f64
//! squared-distance kernels feeding the dissimilarity matrix — plus the
//! flat cache-blocked dissimilarity build against an in-bench
//! reproduction of the pre-backbone nested-`Vec` path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use grafics_cluster::dissimilarity_matrix;
use grafics_types::kernels::{dot_f32, dot_fixed_f32, dot_lanes_f32, sqdist4_f64, sqdist_f64};
use grafics_types::RowMatrix;

fn f32_pair(n: usize) -> (Vec<f32>, Vec<f32>) {
    (
        (0..n).map(|i| (i as f32 * 0.37).sin()).collect(),
        (0..n).map(|i| (i as f32 * 0.91).cos()).collect(),
    )
}

fn f64_points(n: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| (((i * 31 + d * 17) % 97) as f64 * 0.37).sin() * 10.0)
                .collect()
        })
        .collect()
}

/// Sequential vs lane-blocked vs fixed-dim f32 dot products.
fn bench_dot_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/dot_f32");
    for dim in [8usize, 16, 32, 64] {
        let (a, b) = f32_pair(dim);
        group.bench_with_input(BenchmarkId::new("sequential", dim), &dim, |bench, _| {
            bench.iter(|| dot_f32(black_box(&a), black_box(&b)));
        });
        group.bench_with_input(BenchmarkId::new("lane_blocked", dim), &dim, |bench, _| {
            bench.iter(|| dot_lanes_f32(black_box(&a), black_box(&b)));
        });
    }
    let (a, b) = f32_pair(8);
    let fa: &[f32; 8] = a.as_slice().try_into().unwrap();
    let fb: &[f32; 8] = b.as_slice().try_into().unwrap();
    group.bench_function("fixed_8", |bench| {
        bench.iter(|| dot_fixed_f32::<8>(black_box(fa), black_box(fb)));
    });
    group.finish();
}

/// One-pair vs four-pair f64 squared distances (the dissimilarity
/// matrix's inner kernel).
fn bench_sqdist_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/sqdist_f64");
    for dim in [8usize, 32, 64] {
        let rows = f64_points(5, dim);
        group.bench_with_input(BenchmarkId::new("one_pair", dim), &dim, |bench, _| {
            bench.iter(|| sqdist_f64(black_box(&rows[0]), black_box(&rows[1])));
        });
        group.bench_with_input(BenchmarkId::new("four_pairs", dim), &dim, |bench, _| {
            bench.iter(|| {
                sqdist4_f64(
                    black_box(&rows[0]),
                    black_box(&rows[1]),
                    black_box(&rows[2]),
                    black_box(&rows[3]),
                    black_box(&rows[4]),
                )
            });
        });
    }
    group.finish();
}

/// Flat cache-blocked dissimilarity build vs the pre-backbone
/// nested-`Vec` reference (bit-identical output, measured apart).
fn bench_dissimilarity_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/dissimilarity");
    group.sample_size(10);
    let n = 400;
    for dim in [8usize, 32, 64] {
        let nested = f64_points(n, dim);
        let flat = RowMatrix::from_rows(&nested);
        group.bench_with_input(BenchmarkId::new("flat_blocked", dim), &dim, |bench, _| {
            bench.iter(|| dissimilarity_matrix(black_box(&flat), 1));
        });
        group.bench_with_input(BenchmarkId::new("nested_seed", dim), &dim, |bench, _| {
            bench.iter(|| {
                let nested = black_box(&nested);
                let mut dm = Vec::with_capacity(n * (n - 1) / 2);
                for a in 1..n {
                    for b in 0..a {
                        let sq: f64 = nested[a]
                            .iter()
                            .zip(&nested[b])
                            .map(|(&x, &y)| (x - y) * (x - y))
                            .sum();
                        dm.push(sq.sqrt());
                    }
                }
                dm
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dot_kernels,
    bench_sqdist_kernels,
    bench_dissimilarity_layouts
);
criterion_main!(benches);
