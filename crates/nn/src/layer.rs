//! The layer abstraction, dense layers and activations.

use crate::Matrix;
use rand::Rng;

/// A differentiable layer.
///
/// `forward` caches whatever `backward` needs; `backward` consumes the
/// gradient w.r.t. the layer's output and returns the gradient w.r.t. its
/// input, accumulating parameter gradients internally. `apply_grads` lets
/// the optimiser visit `(param, grad)` pairs and must clear the gradient
/// accumulators.
pub trait Layer {
    /// Forward pass over a batch (rows = samples).
    fn forward(&mut self, input: &Matrix) -> Matrix;
    /// Backward pass; returns gradient w.r.t. the input.
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;
    /// Visits each `(parameter, gradient)` buffer pair, then zeroes grads.
    fn apply_grads(&mut self, f: &mut dyn FnMut(&mut [f32], &[f32]));
    /// Number of trainable scalars (for reporting).
    fn param_count(&self) -> usize;
    /// Downcast support: consumes the boxed layer, returning the inner
    /// [`Dense`] if that is what it is. Used to transplant pretrained
    /// layers between networks (stacked-autoencoder pretraining).
    fn into_dense(self: Box<Self>) -> Option<Dense> {
        None
    }
}

/// A fully connected layer `y = x W + b`.
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    grad_w: Matrix,
    grad_b: Vec<f32>,
    input: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with Glorot-uniform weights.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Dense {
            w: Matrix::glorot(in_dim, out_dim, rng),
            b: vec![0.0; out_dim],
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
            input: None,
        }
    }

    /// Input dimensionality.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = input.matmul(&self.w);
        out.add_row_broadcast(&self.b);
        self.input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.input.as_ref().expect("forward before backward");
        // dW = xᵀ g ; db = Σ_rows g ; dx = g Wᵀ
        let gw = input.t_matmul(grad_output);
        for (acc, &g) in self.grad_w.data_mut().iter_mut().zip(gw.data()) {
            *acc += g;
        }
        for (acc, g) in self.grad_b.iter_mut().zip(grad_output.col_sums()) {
            *acc += g;
        }
        grad_output.matmul_t(&self.w)
    }

    fn apply_grads(&mut self, f: &mut dyn FnMut(&mut [f32], &[f32])) {
        f(self.w.data_mut(), self.grad_w.data());
        f(&mut self.b, &self.grad_b);
        self.grad_w.data_mut().fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    fn into_dense(self: Box<Self>) -> Option<Dense> {
        Some(*self)
    }
}

/// Which element-wise non-linearity an [`Activation`] layer applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ActKind {
    /// `max(0, x)`.
    Relu,
    /// `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl ActKind {
    fn apply(self, x: f32) -> f32 {
        match self {
            ActKind::Relu => x.max(0.0),
            ActKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            ActKind::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *output* value `y = f(x)`.
    fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            ActKind::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActKind::Sigmoid => y * (1.0 - y),
            ActKind::Tanh => 1.0 - y * y,
        }
    }
}

/// An element-wise activation layer (caches its output for backward).
pub struct Activation {
    kind: ActKind,
    output: Option<Matrix>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    #[must_use]
    pub fn new(kind: ActKind) -> Self {
        Activation { kind, output: None }
    }

    /// Rectified linear unit.
    #[must_use]
    pub fn relu() -> Self {
        Self::new(ActKind::Relu)
    }

    /// Logistic sigmoid.
    #[must_use]
    pub fn sigmoid() -> Self {
        Self::new(ActKind::Sigmoid)
    }

    /// Hyperbolic tangent.
    #[must_use]
    pub fn tanh() -> Self {
        Self::new(ActKind::Tanh)
    }
}

impl Layer for Activation {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = input.clone();
        for v in out.data_mut() {
            *v = self.kind.apply(*v);
        }
        self.output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let y = self.output.as_ref().expect("forward before backward");
        let mut grad = grad_output.clone();
        for (g, &yv) in grad.data_mut().iter_mut().zip(y.data()) {
            *g *= self.kind.derivative_from_output(yv);
        }
        grad
    }

    fn apply_grads(&mut self, _f: &mut dyn FnMut(&mut [f32], &[f32])) {}

    fn param_count(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dense_forward_known_values() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut d = Dense::new(2, 1, &mut rng);
        d.w.set(0, 0, 2.0);
        d.w.set(1, 0, -1.0);
        d.b[0] = 0.5;
        let out = d.forward(&Matrix::from_rows(&[vec![3.0, 4.0]]));
        assert!((out.get(0, 0) - (6.0 - 4.0 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn activation_values() {
        assert_eq!(ActKind::Relu.apply(-2.0), 0.0);
        assert_eq!(ActKind::Relu.apply(3.0), 3.0);
        assert!((ActKind::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((ActKind::Tanh.apply(0.0)).abs() < 1e-6);
    }

    #[test]
    fn activation_backward_masks_relu() {
        let mut a = Activation::relu();
        let x = Matrix::from_rows(&[vec![-1.0, 2.0]]);
        let _ = a.forward(&x);
        let g = a.backward(&Matrix::from_rows(&[vec![1.0, 1.0]]));
        assert_eq!(g.row(0), &[0.0, 1.0]);
    }

    #[test]
    fn dense_param_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = Dense::new(10, 4, &mut rng);
        assert_eq!(d.param_count(), 44);
    }
}
