//! 2-D convolution, used by the StoryTeller baseline (CNN over images of
//! strong-signal AP positions).

use crate::{Layer, Matrix};
use rand::Rng;

/// A valid-padding 2-D convolution over rows laid out channel-major:
/// `[c0 row-major HxW | c1 HxW | …]`.
///
/// Output rows are `out_channels × out_h × out_w` with
/// `out_h = (h − kernel) / stride + 1` (likewise `out_w`).
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    out_h: usize,
    out_w: usize,
    /// `weights[o][c][ky][kx]` flattened.
    weights: Vec<f32>,
    b: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    input: Option<Matrix>,
}

impl Conv2d {
    /// Creates the layer with Glorot-uniform kernels.
    ///
    /// # Panics
    ///
    /// Panics if the kernel exceeds either spatial dimension, or any size
    /// is zero.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        h: usize,
        w: usize,
        kernel: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && h > 0 && w > 0 && kernel > 0 && stride > 0);
        assert!(
            kernel <= h && kernel <= w,
            "kernel {kernel} exceeds {h}x{w}"
        );
        let out_h = (h - kernel) / stride + 1;
        let out_w = (w - kernel) / stride + 1;
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let n_w = out_channels * in_channels * kernel * kernel;
        Conv2d {
            in_channels,
            out_channels,
            h,
            w,
            kernel,
            stride,
            out_h,
            out_w,
            weights: (0..n_w).map(|_| rng.gen_range(-bound..=bound)).collect(),
            b: vec![0.0; out_channels],
            grad_w: vec![0.0; n_w],
            grad_b: vec![0.0; out_channels],
            input: None,
        }
    }

    /// Output row width (`out_channels × out_h × out_w`).
    #[must_use]
    pub fn out_width(&self) -> usize {
        self.out_channels * self.out_h * self.out_w
    }

    /// Input row width (`in_channels × h × w`).
    #[must_use]
    pub fn in_width(&self) -> usize {
        self.in_channels * self.h * self.w
    }

    /// Output spatial dimensions `(out_h, out_w)`.
    #[must_use]
    pub fn out_dims(&self) -> (usize, usize) {
        (self.out_h, self.out_w)
    }

    #[inline]
    fn w_idx(&self, o: usize, c: usize, ky: usize, kx: usize) -> usize {
        ((o * self.in_channels + c) * self.kernel + ky) * self.kernel + kx
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.in_width(), "Conv2d input width");
        let mut out = Matrix::zeros(input.rows(), self.out_width());
        let plane = self.h * self.w;
        let out_plane = self.out_h * self.out_w;
        for r in 0..input.rows() {
            let x = input.row(r);
            for o in 0..self.out_channels {
                for ty in 0..self.out_h {
                    for tx in 0..self.out_w {
                        let (sy, sx) = (ty * self.stride, tx * self.stride);
                        let mut acc = self.b[o];
                        for c in 0..self.in_channels {
                            for ky in 0..self.kernel {
                                let row_base = c * plane + (sy + ky) * self.w + sx;
                                for kx in 0..self.kernel {
                                    acc +=
                                        self.weights[self.w_idx(o, c, ky, kx)] * x[row_base + kx];
                                }
                            }
                        }
                        out.set(r, o * out_plane + ty * self.out_w + tx, acc);
                    }
                }
            }
        }
        self.input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.input.as_ref().expect("forward before backward");
        assert_eq!(grad_output.cols(), self.out_width());
        let mut grad_in = Matrix::zeros(input.rows(), self.in_width());
        let plane = self.h * self.w;
        let out_plane = self.out_h * self.out_w;
        for r in 0..input.rows() {
            let x = input.row(r).to_vec();
            let g = grad_output.row(r).to_vec();
            let gin = grad_in.row_mut(r);
            for o in 0..self.out_channels {
                for ty in 0..self.out_h {
                    for tx in 0..self.out_w {
                        let go = g[o * out_plane + ty * self.out_w + tx];
                        if go == 0.0 {
                            continue;
                        }
                        self.grad_b[o] += go;
                        let (sy, sx) = (ty * self.stride, tx * self.stride);
                        for c in 0..self.in_channels {
                            for ky in 0..self.kernel {
                                let row_base = c * plane + (sy + ky) * self.w + sx;
                                for kx in 0..self.kernel {
                                    let wi = self.w_idx(o, c, ky, kx);
                                    self.grad_w[wi] += go * x[row_base + kx];
                                    gin[row_base + kx] += go * self.weights[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn apply_grads(&mut self, f: &mut dyn FnMut(&mut [f32], &[f32])) {
        f(&mut self.weights, &self.grad_w);
        f(&mut self.b, &self.grad_b);
        self.grad_w.fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_known_values_identity_kernel() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 3, 2, 1, &mut rng);
        // Kernel picks the top-left value only.
        conv.weights = vec![1.0, 0.0, 0.0, 0.0];
        conv.b = vec![0.0];
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]]);
        let y = conv.forward(&x);
        assert_eq!(y.row(0), &[1.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn shapes_with_stride() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let conv = Conv2d::new(2, 3, 8, 10, 3, 2, &mut rng);
        assert_eq!(conv.out_dims(), (3, 4));
        assert_eq!(conv.out_width(), 36);
        assert_eq!(conv.in_width(), 160);
    }

    #[test]
    fn gradient_check_conv2d() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut conv = Conv2d::new(2, 2, 5, 5, 3, 1, &mut rng);
        let x = Matrix::glorot(2, 50, &mut rng);

        let loss = |conv: &mut Conv2d, x: &Matrix| -> f32 {
            let y = conv.forward(x);
            y.data().iter().map(|v| v * v).sum()
        };

        let y = conv.forward(&x);
        let mut grad_out = y.clone();
        for v in grad_out.data_mut() {
            *v *= 2.0;
        }
        let grad_in = conv.backward(&grad_out);
        let mut analytic_w = vec![0.0; conv.weights.len()];
        conv.apply_grads(&mut |params, grads| {
            if params.len() == analytic_w.len() {
                analytic_w.copy_from_slice(grads);
            }
        });
        let eps = 1e-3;
        for wi in [0usize, 7, 17, conv.weights.len() - 1] {
            let orig = conv.weights[wi];
            conv.weights[wi] = orig + eps;
            let lp = loss(&mut conv, &x);
            conv.weights[wi] = orig - eps;
            let lm = loss(&mut conv, &x);
            conv.weights[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic_w[wi]).abs() < 0.02 * analytic_w[wi].abs().max(1.0),
                "w[{wi}]: numeric {numeric} vs analytic {}",
                analytic_w[wi]
            );
        }
        let mut x2 = x.clone();
        for xi in [0usize, 13, 31, 49] {
            let orig = x2.data()[xi];
            x2.data_mut()[xi] = orig + eps;
            let lp = loss(&mut conv, &x2);
            x2.data_mut()[xi] = orig - eps;
            let lm = loss(&mut conv, &x2);
            x2.data_mut()[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.data()[xi];
            assert!(
                (numeric - analytic).abs() < 0.02 * analytic.abs().max(1.0),
                "x[{xi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn trains_to_detect_a_corner_feature() {
        // A 2-layer net learns to separate images with bright top-left
        // quadrant from bright bottom-right quadrant.
        use crate::{Activation, Dense, Loss, Sequential};
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..40 {
            let mut img = vec![0.0f32; 36]; // 6x6
            let bright = if i % 2 == 0 { (0, 0) } else { (3, 3) };
            for dy in 0..3 {
                for dx in 0..3 {
                    img[(bright.0 + dy) * 6 + bright.1 + dx] = 1.0 + rng.gen_range(-0.1..0.1);
                }
            }
            xs.push(img);
            ys.push(if i % 2 == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            });
        }
        let x = Matrix::from_rows(&xs);
        let y = Matrix::from_rows(&ys);
        let conv = Conv2d::new(1, 4, 6, 6, 3, 3, &mut rng);
        let flat = conv.out_width();
        let mut net = Sequential::new(vec![
            Box::new(conv),
            Box::new(Activation::relu()),
            Box::new(Dense::new(flat, 2, &mut rng)),
        ]);
        for _ in 0..120 {
            net.train_batch(&x, &y, Loss::SoftmaxCrossEntropy, 0.01);
        }
        let out = net.forward(&x);
        let correct = (0..40)
            .filter(|&i| {
                let pred = if out.get(i, 0) > out.get(i, 1) { 0 } else { 1 };
                pred == i % 2
            })
            .count();
        assert!(correct >= 38, "{correct}/40");
    }
}
