//! The `nn` substrate's matrix type: the workspace's contiguous
//! row-major [`RowMatrix`] instantiated at `f32`.
//!
//! Historically this module owned its own flat matrix struct; it now
//! aliases the shared backbone type from `grafics-types`, whose `f32`
//! impl carries the forward/backward operations (`matmul`, `t_matmul`,
//! `matmul_t`, `add_row_broadcast`, `col_sums`, `glorot`) on the shared
//! kernel layer — same loops, same sequential-exact numerics, one copy
//! for the whole workspace. The serialized shape (`{rows, cols, data}`)
//! is unchanged, so persisted nets keep loading.

pub use grafics_types::RowMatrix;

/// A dense row-major `f32` matrix (see [`RowMatrix`]).
pub type Matrix = RowMatrix<f32>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transposed_products_agree_with_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let a = Matrix::glorot(4, 3, &mut rng);
        let b = Matrix::glorot(4, 5, &mut rng);
        let t = a.t_matmul(&b); // aᵀ b : 3×5
        for i in 0..3 {
            for j in 0..5 {
                let naive: f32 = (0..4).map(|k| a.get(k, i) * b.get(k, j)).sum();
                assert!((t.get(i, j) - naive).abs() < 1e-5);
            }
        }
        let c = Matrix::glorot(5, 3, &mut rng);
        let m = a.matmul_t(&c); // a cᵀ : 4×5
        for i in 0..4 {
            for j in 0..5 {
                let naive: f32 = (0..3).map(|k| a.get(i, k) * c.get(j, k)).sum();
                assert!((m.get(i, j) - naive).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col_sums(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn slice_rows_copies_range() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.get(0, 0), 2.0);
    }
}
