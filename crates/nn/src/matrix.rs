//! Row-major `f32` matrices with the operations backprop needs.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// He/Xavier-style uniform init in `±sqrt(6/(fan_in+fan_out))`.
    #[must_use]
    pub fn glorot<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        Matrix {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|_| rng.gen_range(-bound..=bound))
                .collect(),
        }
    }

    /// Builds from row vectors.
    ///
    /// # Panics
    ///
    /// Panics on ragged input or zero rows.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dims");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &b) in orow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ × other` without materialising the transpose.
    #[must_use]
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul outer dims");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let arow = self.row(r);
            let brow = other.row(r);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (j, &b) in brow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// `self × otherᵀ` without materialising the transpose.
    #[must_use]
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t inner dims");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            for j in 0..other.rows {
                let brow = other.row(j);
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += arow[k] * brow[k];
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Adds `bias` (length = cols) to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    #[must_use]
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &x) in sums.iter_mut().zip(self.row(r)) {
                *s += x;
            }
        }
        sums
    }

    /// Returns a sub-matrix of the given row range (copies).
    #[must_use]
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows);
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// `true` when every entry is finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transposed_products_agree_with_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let a = Matrix::glorot(4, 3, &mut rng);
        let b = Matrix::glorot(4, 5, &mut rng);
        let t = a.t_matmul(&b); // aᵀ b : 3×5
        for i in 0..3 {
            for j in 0..5 {
                let naive: f32 = (0..4).map(|k| a.get(k, i) * b.get(k, j)).sum();
                assert!((t.get(i, j) - naive).abs() < 1e-5);
            }
        }
        let c = Matrix::glorot(5, 3, &mut rng);
        let m = a.matmul_t(&c); // a cᵀ : 4×5
        for i in 0..4 {
            for j in 0..5 {
                let naive: f32 = (0..3).map(|k| a.get(i, k) * c.get(j, k)).sum();
                assert!((m.get(i, j) - naive).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col_sums(), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn slice_rows_copies_range() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.slice_rows(1, 3);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.get(0, 0), 2.0);
    }
}
