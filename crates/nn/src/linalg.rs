//! Dense linear algebra for closed-form learners: Cholesky decomposition
//! and ridge regression. Extreme learning machines (the HELM baseline)
//! train their output layer with a single regularised least-squares solve
//! instead of gradient descent.

use crate::Matrix;

/// Solves the ridge-regression problem `min ‖A X − B‖² + λ‖X‖²` in closed
/// form via the normal equations `(AᵀA + λI) X = AᵀB` and a Cholesky
/// factorisation. Returns `X` with shape `(A.cols, B.cols)`.
///
/// Computation is done in `f64` for numerical robustness even though the
/// public matrices are `f32`.
///
/// # Panics
///
/// Panics if `A.rows != B.rows` or `lambda < 0`.
#[must_use]
pub fn ridge_solve(a: &Matrix, b: &Matrix, lambda: f32) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "A and B need matching row counts");
    assert!(lambda >= 0.0, "ridge penalty must be non-negative");
    let (n, d, m) = (a.rows(), a.cols(), b.cols());

    // G = AᵀA + λI  (d×d, f64)
    let mut g = vec![0.0f64; d * d];
    for r in 0..n {
        let row = a.row(r);
        for i in 0..d {
            let ai = f64::from(row[i]);
            if ai == 0.0 {
                continue;
            }
            for j in i..d {
                g[i * d + j] += ai * f64::from(row[j]);
            }
        }
    }
    for i in 0..d {
        g[i * d + i] += f64::from(lambda).max(1e-8);
        for j in 0..i {
            g[i * d + j] = g[j * d + i];
        }
    }

    // C = AᵀB  (d×m, f64)
    let mut c = vec![0.0f64; d * m];
    for r in 0..n {
        let arow = a.row(r);
        let brow = b.row(r);
        for i in 0..d {
            let ai = f64::from(arow[i]);
            if ai == 0.0 {
                continue;
            }
            for k in 0..m {
                c[i * m + k] += ai * f64::from(brow[k]);
            }
        }
    }

    let l = cholesky(&g, d);
    // Solve L Lᵀ X = C column-block-wise.
    let mut x = vec![0.0f64; d * m];
    for k in 0..m {
        // forward: L y = c_k
        let mut y = vec![0.0f64; d];
        for i in 0..d {
            let mut s = c[i * m + k];
            for j in 0..i {
                s -= l[i * d + j] * y[j];
            }
            y[i] = s / l[i * d + i];
        }
        // backward: Lᵀ x = y
        for i in (0..d).rev() {
            let mut s = y[i];
            for j in (i + 1)..d {
                s -= l[j * d + i] * x[j * m + k];
            }
            x[i * m + k] = s / l[i * d + i];
        }
    }
    Matrix::from_flat(d, m, x.into_iter().map(|v| v as f32).collect())
}

/// Lower-triangular Cholesky factor of a symmetric positive-definite
/// matrix (flat row-major, f64). Adds a tiny jitter on near-singular
/// pivots rather than failing, which is the right behaviour for ridge
/// systems that are SPD by construction.
fn cholesky(g: &[f64], d: usize) -> Vec<f64> {
    let mut l = vec![0.0f64; d * d];
    for i in 0..d {
        for j in 0..=i {
            let mut s = g[i * d + j];
            for k in 0..j {
                s -= l[i * d + k] * l[j * d + k];
            }
            if i == j {
                l[i * d + j] = s.max(1e-12).sqrt();
            } else {
                l[i * d + j] = s / l[j * d + j];
            }
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn recovers_exact_solution_of_well_posed_system() {
        // A is 4x2 full rank; B = A * W_true; ridge with tiny lambda
        // should recover W_true.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, -1.0],
        ]);
        let w_true = Matrix::from_rows(&[vec![3.0, -1.0], vec![0.5, 2.0]]);
        let b = a.matmul(&w_true);
        let w = ridge_solve(&a, &b, 1e-6);
        for i in 0..2 {
            for j in 0..2 {
                assert!(
                    (w.get(i, j) - w_true.get(i, j)).abs() < 1e-3,
                    "w[{i}{j}] = {} vs {}",
                    w.get(i, j),
                    w_true.get(i, j)
                );
            }
        }
    }

    #[test]
    fn lambda_shrinks_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let a = Matrix::glorot(30, 5, &mut rng);
        let b = Matrix::glorot(30, 2, &mut rng);
        let norm = |m: &Matrix| m.data().iter().map(|v| v * v).sum::<f32>();
        let small = ridge_solve(&a, &b, 1e-4);
        let large = ridge_solve(&a, &b, 100.0);
        assert!(norm(&large) < norm(&small));
    }

    #[test]
    fn handles_rank_deficient_input() {
        // Duplicate column makes AᵀA singular without the ridge term.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let b = Matrix::from_rows(&[vec![2.0], vec![4.0], vec![6.0]]);
        let w = ridge_solve(&a, &b, 1e-3);
        assert!(w.all_finite());
        // Prediction should still fit: A w ≈ b.
        let pred = a.matmul(&w);
        for r in 0..3 {
            assert!((pred.get(r, 0) - b.get(r, 0)).abs() < 0.05);
        }
    }

    #[test]
    fn residual_is_orthogonalish_to_columns() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = Matrix::glorot(40, 6, &mut rng);
        let b = Matrix::glorot(40, 1, &mut rng);
        let w = ridge_solve(&a, &b, 1e-6);
        let pred = a.matmul(&w);
        // AᵀR ≈ 0 at the least-squares optimum.
        for j in 0..6 {
            let dot: f32 = (0..40)
                .map(|r| a.get(r, j) * (b.get(r, 0) - pred.get(r, 0)))
                .sum();
            assert!(dot.abs() < 1e-2, "column {j} residual dot {dot}");
        }
    }

    #[test]
    #[should_panic(expected = "matching row counts")]
    fn mismatched_rows_panic() {
        let a = Matrix::zeros(3, 2);
        let b = Matrix::zeros(4, 1);
        let _ = ridge_solve(&a, &b, 0.1);
    }
}
