//! 1-D convolution, as used by the paper's autoencoder baseline ("four
//! layers of 1-D convolution with the ReLU activation function").

use crate::{Layer, Matrix};
use rand::Rng;

/// A 1-D convolution over rows laid out as `[channel 0 | channel 1 | …]`.
///
/// Input rows have length `in_channels × len`; output rows have length
/// `out_channels × out_len` with `out_len = (len − kernel) / stride + 1`
/// (valid padding). Weights are Glorot-initialised.
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    len: usize,
    out_len: usize,
    /// `w[o][c][k]` flattened as `o * (in_channels*kernel) + c * kernel + k`.
    w: Vec<f32>,
    b: Vec<f32>,
    grad_w: Vec<f32>,
    grad_b: Vec<f32>,
    input: Option<Matrix>,
}

impl Conv1d {
    /// Creates a valid-padding 1-D convolution.
    ///
    /// # Panics
    ///
    /// Panics if `kernel > len`, `stride == 0`, or any size is zero.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        len: usize,
        kernel: usize,
        stride: usize,
        rng: &mut R,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && len > 0 && kernel > 0 && stride > 0);
        assert!(kernel <= len, "kernel {kernel} exceeds input length {len}");
        let out_len = (len - kernel) / stride + 1;
        let fan_in = in_channels * kernel;
        let fan_out = out_channels * kernel;
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let n_w = out_channels * in_channels * kernel;
        Conv1d {
            in_channels,
            out_channels,
            kernel,
            stride,
            len,
            out_len,
            w: (0..n_w).map(|_| rng.gen_range(-bound..=bound)).collect(),
            b: vec![0.0; out_channels],
            grad_w: vec![0.0; n_w],
            grad_b: vec![0.0; out_channels],
            input: None,
        }
    }

    /// Spatial output length per channel.
    #[must_use]
    pub fn out_len(&self) -> usize {
        self.out_len
    }

    /// Total output row width (`out_channels × out_len`).
    #[must_use]
    pub fn out_width(&self) -> usize {
        self.out_channels * self.out_len
    }

    /// Total input row width (`in_channels × len`).
    #[must_use]
    pub fn in_width(&self) -> usize {
        self.in_channels * self.len
    }

    #[inline]
    fn w_at(&self, o: usize, c: usize, k: usize) -> f32 {
        self.w[o * self.in_channels * self.kernel + c * self.kernel + k]
    }
}

impl Layer for Conv1d {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        assert_eq!(input.cols(), self.in_width(), "Conv1d input width");
        let mut out = Matrix::zeros(input.rows(), self.out_width());
        for r in 0..input.rows() {
            let x = input.row(r);
            for o in 0..self.out_channels {
                for t in 0..self.out_len {
                    let start = t * self.stride;
                    let mut acc = self.b[o];
                    for c in 0..self.in_channels {
                        let base = c * self.len + start;
                        for k in 0..self.kernel {
                            acc += self.w_at(o, c, k) * x[base + k];
                        }
                    }
                    out.set(r, o * self.out_len + t, acc);
                }
            }
        }
        self.input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.input.as_ref().expect("forward before backward");
        assert_eq!(grad_output.cols(), self.out_width());
        let mut grad_in = Matrix::zeros(input.rows(), self.in_width());
        for r in 0..input.rows() {
            let x = input.row(r);
            let g = grad_output.row(r);
            for o in 0..self.out_channels {
                for t in 0..self.out_len {
                    let go = g[o * self.out_len + t];
                    if go == 0.0 {
                        continue;
                    }
                    self.grad_b[o] += go;
                    let start = t * self.stride;
                    for c in 0..self.in_channels {
                        let base = c * self.len + start;
                        let wbase = o * self.in_channels * self.kernel + c * self.kernel;
                        for k in 0..self.kernel {
                            self.grad_w[wbase + k] += go * x[base + k];
                            grad_in.row_mut(r)[base + k] += go * self.w[wbase + k];
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn apply_grads(&mut self, f: &mut dyn FnMut(&mut [f32], &[f32])) {
        f(&mut self.w, &self.grad_w);
        f(&mut self.b, &self.grad_b);
        self.grad_w.fill(0.0);
        self.grad_b.fill(0.0);
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_known_values_single_channel() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut conv = Conv1d::new(1, 1, 4, 2, 1, &mut rng);
        conv.w = vec![1.0, -1.0];
        conv.b = vec![0.5];
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 5.0]]);
        let y = conv.forward(&x);
        // windows: (1-2), (2-3), (3-5) plus bias
        assert_eq!(y.row(0), &[-0.5, -0.5, -1.5]);
    }

    #[test]
    fn stride_and_out_len() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let conv = Conv1d::new(2, 3, 10, 3, 2, &mut rng);
        assert_eq!(conv.out_len(), 4);
        assert_eq!(conv.out_width(), 12);
        assert_eq!(conv.in_width(), 20);
    }

    #[test]
    fn multi_channel_forward_sums_channels() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut conv = Conv1d::new(2, 1, 3, 1, 1, &mut rng);
        conv.w = vec![2.0, 10.0]; // o0c0k0 = 2, o0c1k0 = 10
        conv.b = vec![0.0];
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]);
        let y = conv.forward(&x);
        assert_eq!(y.row(0), &[2.0 + 40.0, 4.0 + 50.0, 6.0 + 60.0]);
    }

    #[test]
    fn gradient_check_conv1d() {
        // Finite-difference check of dL/dw and dL/dx for L = Σ y².
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut conv = Conv1d::new(2, 2, 5, 3, 1, &mut rng);
        let x = Matrix::glorot(2, 10, &mut rng);

        let loss = |conv: &mut Conv1d, x: &Matrix| -> f32 {
            let y = conv.forward(x);
            y.data().iter().map(|v| v * v).sum()
        };

        let y = conv.forward(&x);
        let mut grad_out = y.clone();
        for v in grad_out.data_mut() {
            *v *= 2.0;
        }
        let grad_in = conv.backward(&grad_out);

        // Check a handful of weight coordinates.
        let mut analytic_w = vec![0.0; conv.w.len()];
        conv.apply_grads(&mut |params, grads| {
            if params.len() == analytic_w.len() {
                analytic_w.copy_from_slice(grads);
            }
        });
        let eps = 1e-3;
        for wi in [0usize, 3, 7, conv.w.len() - 1] {
            let orig = conv.w[wi];
            conv.w[wi] = orig + eps;
            let lp = loss(&mut conv, &x);
            conv.w[wi] = orig - eps;
            let lm = loss(&mut conv, &x);
            conv.w[wi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic_w[wi]).abs() < 0.02 * analytic_w[wi].abs().max(1.0),
                "w[{wi}]: numeric {numeric} vs analytic {}",
                analytic_w[wi]
            );
        }

        // Check a few input coordinates.
        let mut x2 = x.clone();
        for xi in [0usize, 5, 13, 19] {
            let orig = x2.data()[xi];
            x2.data_mut()[xi] = orig + eps;
            let lp = loss(&mut conv, &x2);
            x2.data_mut()[xi] = orig - eps;
            let lm = loss(&mut conv, &x2);
            x2.data_mut()[xi] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad_in.data()[xi];
            assert!(
                (numeric - analytic).abs() < 0.02 * analytic.abs().max(1.0),
                "x[{xi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }
}
