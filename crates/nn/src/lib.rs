//! A minimal from-scratch CPU neural-network substrate.
//!
//! The GRAFICS paper compares against four learned baselines — a stacked
//! autoencoder (SAE), a 1-D convolutional autoencoder, Scalable-DNN, and
//! MDS. The first three need dense layers, 1-D convolutions, standard
//! activations, softmax cross-entropy and an optimiser. This crate provides
//! exactly that, small enough to audit:
//!
//! - [`Matrix`] — row-major `f32` matrix with the handful of ops needed;
//! - [`Dense`], [`Conv1d`], [`Activation`] — layers implementing [`Layer`]
//!   with explicit forward/backward;
//! - [`Sequential`] — a layer stack with [`Adam`] parameter updates;
//! - [`Loss`] — mean-squared error and softmax cross-entropy.
//!
//! Backpropagation correctness is enforced by finite-difference gradient
//! checks in the test suite.
//!
//! # Examples
//!
//! ```
//! use grafics_nn::{Activation, Dense, Loss, Matrix, Sequential};
//! use rand::SeedableRng;
//!
//! // Learn XOR.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut net = Sequential::new(vec![
//!     Box::new(Dense::new(2, 8, &mut rng)),
//!     Box::new(Activation::tanh()),
//!     Box::new(Dense::new(8, 1, &mut rng)),
//!     Box::new(Activation::sigmoid()),
//! ]);
//! let x = Matrix::from_rows(&[vec![0.,0.], vec![0.,1.], vec![1.,0.], vec![1.,1.]]);
//! let y = Matrix::from_rows(&[vec![0.], vec![1.], vec![1.], vec![0.]]);
//! for _ in 0..800 {
//!     net.train_batch(&x, &y, Loss::Mse, 0.05);
//! }
//! let out = net.forward(&x);
//! assert!(out.get(0, 0) < 0.2 && out.get(1, 0) > 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod conv2d;
mod layer;
pub mod linalg;
mod matrix;
mod net;

pub use conv::Conv1d;
pub use conv2d::Conv2d;
pub use layer::{ActKind, Activation, Dense, Layer};
pub use linalg::ridge_solve;
pub use matrix::Matrix;
pub use net::{Adam, Loss, Sequential};
