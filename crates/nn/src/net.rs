//! Layer stacks, losses and the Adam optimiser.

use crate::{Layer, Matrix};
use rand::seq::SliceRandom;
use rand::Rng;

/// Training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Loss {
    /// Mean squared error, averaged over all entries.
    Mse,
    /// Row-wise softmax followed by cross-entropy against one-hot targets.
    SoftmaxCrossEntropy,
}

impl Loss {
    /// Returns `(loss value, gradient w.r.t. the network output)`.
    #[must_use]
    pub fn evaluate(self, output: &Matrix, target: &Matrix) -> (f32, Matrix) {
        assert_eq!(output.rows(), target.rows());
        assert_eq!(output.cols(), target.cols());
        let n = (output.rows() * output.cols()) as f32;
        match self {
            Loss::Mse => {
                let mut grad = Matrix::zeros(output.rows(), output.cols());
                let mut loss = 0.0;
                for i in 0..output.data().len() {
                    let d = output.data()[i] - target.data()[i];
                    loss += d * d;
                    grad.data_mut()[i] = 2.0 * d / n;
                }
                (loss / n, grad)
            }
            Loss::SoftmaxCrossEntropy => {
                let rows = output.rows() as f32;
                let mut grad = Matrix::zeros(output.rows(), output.cols());
                let mut loss = 0.0;
                for r in 0..output.rows() {
                    let row = output.row(r);
                    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                    let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
                    let z: f32 = exps.iter().sum();
                    for (c, &e) in exps.iter().enumerate() {
                        let p = e / z;
                        let t = target.get(r, c);
                        if t > 0.0 {
                            loss -= t * p.max(1e-12).ln();
                        }
                        // d(softmax-CE)/d(logit) = p − t
                        grad.set(r, c, (p - t) / rows);
                    }
                }
                (loss / rows, grad)
            }
        }
    }
}

/// Adam optimiser state over a flat list of parameter buffers.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the usual defaults (β₁ = 0.9, β₂ = 0.999).
    #[must_use]
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Sets the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        while self.m.len() <= slot {
            self.m.push(Vec::new());
            self.v.push(Vec::new());
        }
        if self.m[slot].len() != params.len() {
            self.m[slot] = vec![0.0; params.len()];
            self.v[slot] = vec![0.0; params.len()];
        }
        let bias1 = 1.0 - self.beta1.powi(self.t);
        let bias2 = 1.0 - self.beta2.powi(self.t);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[slot][i] = self.beta1 * self.m[slot][i] + (1.0 - self.beta1) * g;
            self.v[slot][i] = self.beta2 * self.v[slot][i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[slot][i] / bias1;
            let vhat = self.v[slot][i] / bias2;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// A stack of layers trained end-to-end with Adam.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    optimizer: Adam,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.layers.len())
            .field("params", &self.param_count())
            .finish()
    }
}

impl Sequential {
    /// Builds a network from layers, with Adam(lr = 1e-3).
    #[must_use]
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential {
            layers,
            optimizer: Adam::new(1e-3),
        }
    }

    /// Number of trainable scalars.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Consumes the network, returning its layers (e.g. to transplant
    /// pretrained stages into another network).
    #[must_use]
    pub fn into_layers(self) -> Vec<Box<dyn Layer>> {
        self.layers
    }

    /// Forward pass (caches activations for a subsequent backward).
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Forward through the first `n` layers only — used to read encoder
    /// activations (embeddings) out of an autoencoder.
    pub fn forward_partial(&mut self, input: &Matrix, n: usize) -> Matrix {
        let mut x = input.clone();
        for layer in self.layers.iter_mut().take(n) {
            x = layer.forward(&x);
        }
        x
    }

    /// One full-batch training step; returns the loss before the update.
    pub fn train_batch(&mut self, x: &Matrix, y: &Matrix, loss: Loss, lr: f32) -> f32 {
        let out = self.forward(x);
        let (value, mut grad) = loss.evaluate(&out, y);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        self.optimizer.set_lr(lr);
        self.optimizer.begin_step();
        let mut slot = 0;
        let opt = &mut self.optimizer;
        for layer in &mut self.layers {
            layer.apply_grads(&mut |params, grads| {
                opt.update(slot, params, grads);
                slot += 1;
            });
        }
        value
    }

    /// One epoch of mini-batch SGD over shuffled rows; returns mean loss.
    pub fn train_epoch<R: Rng + ?Sized>(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        loss: Loss,
        lr: f32,
        batch: usize,
        rng: &mut R,
    ) -> f32 {
        assert_eq!(x.rows(), y.rows());
        let mut order: Vec<usize> = (0..x.rows()).collect();
        order.shuffle(rng);
        let mut total = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(batch.max(1)) {
            let bx =
                Matrix::from_rows(&chunk.iter().map(|&i| x.row(i).to_vec()).collect::<Vec<_>>());
            let by =
                Matrix::from_rows(&chunk.iter().map(|&i| y.row(i).to_vec()).collect::<Vec<_>>());
            total += self.train_batch(&bx, &by, loss, lr);
            batches += 1;
        }
        total / batches as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Dense};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mse_loss_and_grad() {
        let out = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let tgt = Matrix::from_rows(&[vec![0.0, 2.0]]);
        let (l, g) = Loss::Mse.evaluate(&out, &tgt);
        assert!((l - 0.5).abs() < 1e-6);
        assert_eq!(g.row(0), &[1.0, 0.0]);
    }

    #[test]
    fn softmax_ce_prefers_correct_class() {
        let out = Matrix::from_rows(&[vec![3.0, 0.0]]);
        let tgt = Matrix::from_rows(&[vec![1.0, 0.0]]);
        let (l_good, _) = Loss::SoftmaxCrossEntropy.evaluate(&out, &tgt);
        let tgt_bad = Matrix::from_rows(&[vec![0.0, 1.0]]);
        let (l_bad, _) = Loss::SoftmaxCrossEntropy.evaluate(&out, &tgt_bad);
        assert!(l_good < l_bad);
    }

    #[test]
    fn softmax_grad_sums_to_zero_per_row() {
        let out = Matrix::from_rows(&[vec![1.0, -2.0, 0.5]]);
        let tgt = Matrix::from_rows(&[vec![0.0, 1.0, 0.0]]);
        let (_, g) = Loss::SoftmaxCrossEntropy.evaluate(&out, &tgt);
        let s: f32 = g.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn dense_gradient_check_through_loss() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(3, 4, &mut rng)),
            Box::new(Activation::tanh()),
            Box::new(Dense::new(4, 2, &mut rng)),
        ]);
        let x = Matrix::glorot(5, 3, &mut rng);
        let y = Matrix::glorot(5, 2, &mut rng);

        // Analytic input gradient.
        let out = net.forward(&x);
        let (_, mut grad) = Loss::Mse.evaluate(&out, &y);
        for layer in net.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        // Finite differences on x.
        let eps = 1e-2f32;
        for xi in [0usize, 4, 9, 14] {
            let mut xp = x.clone();
            xp.data_mut()[xi] += eps;
            let (lp, _) = Loss::Mse.evaluate(&net.forward(&xp), &y);
            let mut xm = x.clone();
            xm.data_mut()[xi] -= eps;
            let (lm, _) = Loss::Mse.evaluate(&net.forward(&xm), &y);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.data()[xi];
            assert!(
                (numeric - analytic).abs() < 0.05 * analytic.abs().max(0.05),
                "x[{xi}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn classifier_learns_blobs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Two Gaussian-ish blobs, 2 classes.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..60 {
            let c = i % 2;
            let cx = if c == 0 { -2.0 } else { 2.0 };
            xs.push(vec![
                cx + rng.gen_range(-0.5..0.5),
                rng.gen_range(-0.5..0.5),
            ]);
            ys.push(if c == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            });
        }
        let x = Matrix::from_rows(&xs);
        let y = Matrix::from_rows(&ys);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(2, 8, &mut rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(8, 2, &mut rng)),
        ]);
        for _ in 0..60 {
            net.train_epoch(&x, &y, Loss::SoftmaxCrossEntropy, 0.01, 16, &mut rng);
        }
        let out = net.forward(&x);
        let correct = (0..60)
            .filter(|&i| {
                let pred = if out.get(i, 0) > out.get(i, 1) { 0 } else { 1 };
                pred == i % 2
            })
            .count();
        assert!(correct >= 57, "classifier got {correct}/60");
    }

    #[test]
    fn autoencoder_reduces_reconstruction_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x = Matrix::glorot(20, 6, &mut rng);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(6, 3, &mut rng)),
            Box::new(Activation::tanh()),
            Box::new(Dense::new(3, 6, &mut rng)),
        ]);
        let (first, _) = Loss::Mse.evaluate(&net.forward(&x), &x);
        for _ in 0..300 {
            net.train_batch(&x, &x, Loss::Mse, 0.01);
        }
        let (last, _) = Loss::Mse.evaluate(&net.forward(&x), &x);
        assert!(last < first * 0.5, "MSE {first} -> {last}");
    }

    #[test]
    fn forward_partial_reads_encoder() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(4, 2, &mut rng)),
            Box::new(Activation::tanh()),
            Box::new(Dense::new(2, 4, &mut rng)),
        ]);
        let x = Matrix::glorot(3, 4, &mut rng);
        let code = net.forward_partial(&x, 2);
        assert_eq!(code.rows(), 3);
        assert_eq!(code.cols(), 2);
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let net = Sequential::new(vec![
            Box::new(Dense::new(3, 4, &mut rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(4, 2, &mut rng)),
        ]);
        assert_eq!(net.param_count(), (3 * 4 + 4) + (4 * 2 + 2));
    }
}
