//! Property-based tests of the NN substrate's algebraic invariants.

use grafics_nn::{Conv1d, Conv2d, Layer, Matrix};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |data| Matrix::from_flat(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Matrix multiplication distributes over addition:
    /// (A + B) C = AC + BC.
    #[test]
    fn matmul_distributes(
        a in arb_matrix(3, 4),
        b in arb_matrix(3, 4),
        c in arb_matrix(4, 2),
    ) {
        let mut ab = a.clone();
        for (x, &y) in ab.data_mut().iter_mut().zip(b.data()) {
            *x += y;
        }
        let left = ab.matmul(&c);
        let ac = a.matmul(&c);
        let bc = b.matmul(&c);
        for i in 0..left.data().len() {
            let rhs = ac.data()[i] + bc.data()[i];
            prop_assert!((left.data()[i] - rhs).abs() < 1e-4);
        }
    }

    /// `t_matmul` equals transposing then multiplying.
    #[test]
    fn t_matmul_is_transpose_then_matmul(a in arb_matrix(4, 3), b in arb_matrix(4, 2)) {
        let t = a.t_matmul(&b);
        for i in 0..3 {
            for j in 0..2 {
                let naive: f32 = (0..4).map(|k| a.get(k, i) * b.get(k, j)).sum();
                prop_assert!((t.get(i, j) - naive).abs() < 1e-4);
            }
        }
    }

    /// Conv1d (with zero bias) is a linear operator: scaling the input
    /// scales the output.
    #[test]
    fn conv1d_is_linear_in_input(x in arb_matrix(2, 12), scale in -3.0f32..3.0) {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut conv = Conv1d::new(1, 2, 12, 3, 2, &mut rng);
        let y1 = conv.forward(&x);
        let mut xs = x.clone();
        for v in xs.data_mut() {
            *v *= scale;
        }
        let y2 = conv.forward(&xs);
        for i in 0..y1.data().len() {
            prop_assert!(
                (y2.data()[i] - scale * y1.data()[i]).abs() < 1e-3,
                "index {}: {} vs {}", i, y2.data()[i], scale * y1.data()[i]
            );
        }
    }

    /// Conv2d additivity: f(x + y) = f(x) + f(y) − f(0) (bias counted once).
    #[test]
    fn conv2d_additivity(x in arb_matrix(1, 25), y in arb_matrix(1, 25)) {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut conv = Conv2d::new(1, 2, 5, 5, 3, 1, &mut rng);
        let fx = conv.forward(&x);
        let fy = conv.forward(&y);
        let f0 = conv.forward(&Matrix::zeros(1, 25));
        let mut xy = x.clone();
        for (v, &w) in xy.data_mut().iter_mut().zip(y.data()) {
            *v += w;
        }
        let fxy = conv.forward(&xy);
        for i in 0..fxy.data().len() {
            let rhs = fx.data()[i] + fy.data()[i] - f0.data()[i];
            prop_assert!((fxy.data()[i] - rhs).abs() < 1e-3);
        }
    }

    /// Ridge solutions are finite for any well-shaped input.
    #[test]
    fn ridge_solve_always_finite(a in arb_matrix(6, 3), b in arb_matrix(6, 2)) {
        let w = grafics_nn::ridge_solve(&a, &b, 0.1);
        prop_assert_eq!(w.rows(), 3);
        prop_assert_eq!(w.cols(), 2);
        prop_assert!(w.all_finite());
    }
}
