//! The four state-of-the-art comparison baselines of §VI-A, plus the raw
//! matrix-representation baseline of Fig. 14.
//!
//! All of them start from the *matrix representation* the paper argues
//! against: a fixed MAC vocabulary defines the columns, each record is a
//! row, and missing readings are filled with −120 dBm — the "missing value
//! problem" (§II, Fig. 2). On top of that representation:
//!
//! - [`MatrixProx`] — the raw rows used directly as embeddings with the
//!   proximity clustering (Fig. 14's "Matrix" bars);
//! - [`MdsProx`] — classical multidimensional scaling on `1 − cosine`
//!   distances, plus proximity clustering;
//! - [`AutoencoderProx`] — a 1-D convolutional autoencoder (four conv
//!   layers with ReLU, matching the paper's description) whose bottleneck
//!   is clustered with Prox;
//! - [`Sae`] — stacked autoencoders with layer-wise pretraining and a
//!   fine-tuned classifier head (Nowicki & Wietrzykowski);
//! - [`ScalableDnn`] — encoder + feed-forward floor classifier (Kim et
//!   al.), trained on one-hot floors.
//!
//! The supervised models ([`Sae`], [`ScalableDnn`]) receive *pseudo-labels*
//! for the unlabelled majority — the label of the nearest labelled sample
//! in their own embedding space — exactly the protocol the paper uses for
//! a fair comparison.
//!
//! Every baseline implements [`FloorClassifier`] so the benchmark harness
//! treats them interchangeably with GRAFICS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autoencoder;
mod encoder;
mod helm;
mod mds;
mod prox;
mod sae;
mod scalable_dnn;
mod storyteller;
mod svm;
mod vifi;

pub use autoencoder::AutoencoderProx;
pub use encoder::{MatrixEncoder, MISSING_DBM};
pub use helm::Helm;
pub use mds::MdsProx;
pub use prox::MatrixProx;
pub use sae::Sae;
pub use scalable_dnn::ScalableDnn;
pub use storyteller::StoryTeller;
pub use svm::SvmOvO;
pub use vifi::ViFi;

use grafics_types::{FloorId, SignalRecord};
use std::fmt;

/// Common interface: predict the floor of an online RF record.
pub trait FloorClassifier {
    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;
    /// Predicts a floor; `None` when the record cannot be scored (e.g. it
    /// shares no MAC with the training vocabulary).
    fn predict(&mut self, record: &SignalRecord) -> Option<FloorId>;
}

/// Hyper-parameters shared by the learned baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineConfig {
    /// Embedding / bottleneck dimensionality (paper: 8, same as GRAFICS).
    pub dim: usize,
    /// Training epochs for the neural models.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            dim: 8,
            epochs: 40,
            lr: 1e-3,
            batch: 32,
        }
    }
}

/// Errors from baseline training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BaselineError {
    /// The training dataset is empty.
    EmptyTrainingSet,
    /// No sample carries a floor label.
    NoLabeledSamples,
    /// Downstream clustering failure.
    Cluster(grafics_cluster::ClusterError),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::EmptyTrainingSet => write!(f, "training dataset is empty"),
            BaselineError::NoLabeledSamples => write!(f, "no labelled samples in training set"),
            BaselineError::Cluster(e) => write!(f, "clustering: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<grafics_cluster::ClusterError> for BaselineError {
    fn from(e: grafics_cluster::ClusterError) -> Self {
        BaselineError::Cluster(e)
    }
}

/// Assigns every unlabelled embedding the floor of its nearest labelled
/// embedding (ℓ2), the paper's pseudo-label protocol for training the
/// supervised baselines. Rows live in the workspace's flat
/// [`grafics_types::RowMatrix`]; distances go through the shared
/// squared-distance kernel. Returns one label per row.
///
/// # Panics
///
/// Panics if `embeddings` and `labels` lengths differ or no label is set.
#[must_use]
pub fn pseudo_labels(
    embeddings: &grafics_types::RowMatrix<f64>,
    labels: &[Option<FloorId>],
) -> Vec<FloorId> {
    assert_eq!(embeddings.rows(), labels.len());
    let labeled: Vec<(usize, FloorId)> = labels
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.map(|f| (i, f)))
        .collect();
    assert!(
        !labeled.is_empty(),
        "pseudo-labelling needs at least one labelled sample"
    );
    embeddings
        .iter_rows()
        .enumerate()
        .map(|(i, e)| {
            if let Some(f) = labels[i] {
                return f;
            }
            labeled
                .iter()
                .map(|&(j, f)| (grafics_types::kernels::sqdist_f64(e, embeddings.row(j)), f))
                .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"))
                .map(|(_, f)| f)
                .expect("labeled set non-empty")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudo_labels_respect_given_labels() {
        let emb =
            grafics_types::RowMatrix::from_rows(&[vec![0.0], vec![0.1], vec![10.0], vec![10.1]]);
        let labels = vec![Some(FloorId(0)), None, Some(FloorId(1)), None];
        let pl = pseudo_labels(&emb, &labels);
        assert_eq!(pl, vec![FloorId(0), FloorId(0), FloorId(1), FloorId(1)]);
    }

    #[test]
    #[should_panic(expected = "at least one labelled")]
    fn pseudo_labels_require_a_label() {
        let _ = pseudo_labels(&grafics_types::RowMatrix::from_rows(&[vec![0.0]]), &[None]);
    }
}
