//! ViFi-style oracle baseline (Caso et al., §II [29]).
//!
//! ViFi fits a multi-wall multi-floor propagation model from RSS
//! measurements, generates *virtual reference points* on every floor, and
//! classifies new signals by weighted k-nearest-neighbours against them.
//! It requires the APs' physical locations — information crowdsourced
//! corpora do not carry, which is exactly why the paper designs GRAFICS
//! to work without it.
//!
//! Our simulator *does* know the AP locations, so we can implement ViFi
//! faithfully as an **oracle-information comparator**: it consumes the
//! true [`grafics_data::BuildingLayout`] plus labelled samples, fits the
//! path-loss exponent and floor-attenuation factor by least squares, and
//! predicts floors via virtual fingerprints. GRAFICS matching or beating
//! an oracle that sees the AP map is a strong result.

use crate::BaselineError;
use grafics_data::BuildingLayout;
use grafics_types::{Dataset, FloorId, MacAddr, SignalRecord};
use std::collections::HashMap;

/// Virtual-fingerprint floor classifier with oracle AP locations.
#[derive(Debug)]
pub struct ViFi {
    /// Fitted path-loss exponent `n`.
    pub path_loss_exponent: f64,
    /// Fitted per-floor attenuation in dB.
    pub floor_attenuation_db: f64,
    /// Fitted intercept `P₀` (transmit power minus reference loss).
    pub p0_dbm: f64,
    ap_index: HashMap<MacAddr, (f64, f64, i16)>,
    /// Virtual reference points: (floor, virtual fingerprint).
    references: Vec<(FloorId, Vec<(MacAddr, f64)>)>,
    k: usize,
}

impl ViFi {
    /// Fits the propagation parameters from the labelled samples and
    /// generates `grid × grid` virtual reference points per floor.
    ///
    /// # Errors
    ///
    /// [`BaselineError::NoLabeledSamples`] if no sample carries a label.
    pub fn train(
        train: &Dataset,
        layout: &BuildingLayout,
        width_m: f64,
        depth_m: f64,
        floors: i16,
        floor_height_m: f64,
        grid: usize,
    ) -> Result<Self, BaselineError> {
        let labeled: Vec<_> = train.samples().iter().filter(|s| s.is_labeled()).collect();
        if labeled.is_empty() {
            return Err(BaselineError::NoLabeledSamples);
        }
        let ap_index: HashMap<MacAddr, (f64, f64, i16)> = layout
            .aps
            .iter()
            .map(|a| (a.mac, (a.x, a.y, a.floor)))
            .collect();

        // Least squares over observations: RSS = P0 − 10 n log10(d) − FAF·Δf.
        // Design matrix columns: [1, −10·log10(d), −Δf]. ViFi does not know
        // the measurement position, so (like the original) we approximate
        // each labelled sample's position by the strongest AP's location.
        let mut rows: Vec<[f64; 3]> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for s in &labeled {
            let strongest = s.record.strongest();
            let Some(&(sx, sy, _)) = ap_index.get(&strongest.mac) else {
                continue;
            };
            let sample_floor = f64::from(s.floor.expect("labelled").0);
            for r in s.record.readings() {
                let Some(&(ax, ay, af)) = ap_index.get(&r.mac) else {
                    continue;
                };
                let dz = (f64::from(af) - sample_floor) * floor_height_m;
                let d = ((ax - sx).powi(2) + (ay - sy).powi(2) + dz * dz)
                    .sqrt()
                    .max(1.0);
                rows.push([
                    1.0,
                    -10.0 * d.log10(),
                    -(f64::from(af) - sample_floor).abs(),
                ]);
                ys.push(r.rssi.dbm());
            }
        }
        let [p0, n, faf] = solve_3x3_least_squares(&rows, &ys);
        // Clamp to physically sane ranges (tiny labelled sets can produce
        // wild fits).
        let n = n.clamp(1.5, 4.5);
        let faf = faf.clamp(5.0, 30.0);

        // Virtual reference points on a grid per floor.
        let mut references = Vec::new();
        for floor in 0..floors {
            for gi in 0..grid {
                for gj in 0..grid {
                    let x = width_m * (gi as f64 + 0.5) / grid as f64;
                    let y = depth_m * (gj as f64 + 0.5) / grid as f64;
                    let mut fp: Vec<(MacAddr, f64)> = layout
                        .aps
                        .iter()
                        .map(|a| {
                            let dz = f64::from(a.floor - floor) * floor_height_m;
                            let d = ((a.x - x).powi(2) + (a.y - y).powi(2) + dz * dz)
                                .sqrt()
                                .max(1.0);
                            let rss = p0
                                - 10.0 * n * d.log10()
                                - faf * f64::from((a.floor - floor).abs());
                            (a.mac, rss)
                        })
                        .filter(|&(_, rss)| rss > -95.0)
                        .collect();
                    fp.sort_by_key(|&(mac, _)| mac);
                    references.push((FloorId(floor), fp));
                }
            }
        }
        Ok(ViFi {
            path_loss_exponent: n,
            floor_attenuation_db: faf,
            p0_dbm: p0,
            ap_index,
            references,
            k: 5,
        })
    }

    /// Weighted k-NN floor prediction against the virtual fingerprints.
    #[must_use]
    pub fn predict(&self, record: &SignalRecord) -> Option<FloorId> {
        if !record.macs().any(|m| self.ap_index.contains_key(&m)) {
            return None;
        }
        let mut scored: Vec<(f64, FloorId)> = self
            .references
            .iter()
            .map(|(floor, fp)| (fingerprint_distance(record, fp), *floor))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut weights: HashMap<FloorId, f64> = HashMap::new();
        for &(d, f) in scored.iter().take(self.k) {
            *weights.entry(f).or_default() += 1.0 / (d + 1e-6);
        }
        weights
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .map(|(f, _)| f)
    }
}

/// Mean |ΔRSS| over shared MACs, with a miss penalty per MAC present in
/// only one side (the standard virtual-fingerprint matching rule).
fn fingerprint_distance(record: &SignalRecord, fp: &[(MacAddr, f64)]) -> f64 {
    const MISS_PENALTY: f64 = 25.0;
    let fp_map: HashMap<MacAddr, f64> = fp.iter().copied().collect();
    let mut sum = 0.0;
    let mut n = 0usize;
    for r in record.readings() {
        match fp_map.get(&r.mac) {
            Some(&expected) => sum += (r.rssi.dbm() - expected).abs(),
            None => sum += MISS_PENALTY,
        }
        n += 1;
    }
    if n == 0 {
        f64::INFINITY
    } else {
        sum / n as f64
    }
}

/// Ordinary least squares for a 3-parameter linear model via the normal
/// equations (closed form for the 3×3 system).
#[allow(clippy::needless_range_loop)] // Gaussian elimination over two rows of `m` at once
fn solve_3x3_least_squares(rows: &[[f64; 3]], ys: &[f64]) -> [f64; 3] {
    let mut ata = [[0.0f64; 3]; 3];
    let mut aty = [0.0f64; 3];
    for (row, &y) in rows.iter().zip(ys) {
        for i in 0..3 {
            aty[i] += row[i] * y;
            for j in 0..3 {
                ata[i][j] += row[i] * row[j];
            }
        }
    }
    for (i, row) in ata.iter_mut().enumerate() {
        row[i] += 1e-6; // ridge jitter
    }
    // Gaussian elimination on the 3×3 system.
    let mut m = [
        [ata[0][0], ata[0][1], ata[0][2], aty[0]],
        [ata[1][0], ata[1][1], ata[1][2], aty[1]],
        [ata[2][0], ata[2][1], ata[2][2], aty[2]],
    ];
    for col in 0..3 {
        let pivot = (col..3)
            .max_by(|&a, &b| {
                m[a][col]
                    .abs()
                    .partial_cmp(&m[b][col].abs())
                    .expect("finite")
            })
            .expect("non-empty");
        m.swap(col, pivot);
        let p = m[col][col];
        if p.abs() < 1e-12 {
            continue;
        }
        for r in 0..3 {
            if r != col {
                let factor = m[r][col] / p;
                for c in col..4 {
                    m[r][c] -= factor * m[col][c];
                }
            }
        }
    }
    [m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_data::BuildingModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn least_squares_recovers_known_parameters() {
        // y = 5 + 2 a + 3 b exactly.
        let rows: Vec<[f64; 3]> = (0..30)
            .map(|i| [1.0, (i % 7) as f64, (i % 5) as f64])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 5.0 + 2.0 * r[1] + 3.0 * r[2]).collect();
        let [c0, c1, c2] = solve_3x3_least_squares(&rows, &ys);
        assert!((c0 - 5.0).abs() < 1e-6, "{c0}");
        assert!((c1 - 2.0).abs() < 1e-6, "{c1}");
        assert!((c2 - 3.0).abs() < 1e-6, "{c2}");
    }

    #[test]
    fn fitted_parameters_are_physical() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let b = BuildingModel::office("vifi", 4).with_records_per_floor(60);
        let layout = b.layout(&mut rng);
        let ds = b.simulate_with_layout(&layout, &mut rng);
        let train = ds.with_label_budget(20, &mut rng);
        let model = ViFi::train(
            &train,
            &layout,
            b.width_m,
            b.depth_m,
            b.floors,
            b.propagation.floor_height_m,
            6,
        )
        .unwrap();
        // The simulator uses n = 2.8, FAF = 16; the fit should land nearby.
        assert!(
            (1.5..=4.5).contains(&model.path_loss_exponent),
            "{}",
            model.path_loss_exponent
        );
        assert!(
            (5.0..=30.0).contains(&model.floor_attenuation_db),
            "{}",
            model.floor_attenuation_db
        );
    }

    #[test]
    fn oracle_vifi_classifies_reasonably() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let b = BuildingModel::office("vifi2", 3).with_records_per_floor(60);
        let layout = b.layout(&mut rng);
        let ds = b.simulate_with_layout(&layout, &mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        let train = split.train.with_label_budget(10, &mut rng);
        let model = ViFi::train(
            &train,
            &layout,
            b.width_m,
            b.depth_m,
            b.floors,
            b.propagation.floor_height_m,
            6,
        )
        .unwrap();
        let mut hits = 0;
        let mut total = 0;
        for s in split.test.samples() {
            if let Some(f) = model.predict(&s.record) {
                total += 1;
                if f == s.ground_truth {
                    hits += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(hits * 10 >= total * 6, "oracle ViFi: {hits}/{total}");
    }

    #[test]
    fn requires_labels() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let b = BuildingModel::office("vifi3", 2).with_records_per_floor(10);
        let layout = b.layout(&mut rng);
        let ds = b.simulate_with_layout(&layout, &mut rng).unlabeled();
        assert!(matches!(
            ViFi::train(&ds, &layout, b.width_m, b.depth_m, b.floors, 3.5, 4),
            Err(BaselineError::NoLabeledSamples)
        ));
    }

    #[test]
    fn foreign_record_is_none() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let b = BuildingModel::office("vifi4", 2).with_records_per_floor(20);
        let layout = b.layout(&mut rng);
        let ds = b.simulate_with_layout(&layout, &mut rng);
        let train = ds.with_label_budget(5, &mut rng);
        let model = ViFi::train(&train, &layout, b.width_m, b.depth_m, b.floors, 3.5, 4).unwrap();
        let foreign = SignalRecord::new(vec![grafics_types::Reading::new(
            MacAddr::from_u64(0xdeadbeef),
            grafics_types::Rssi::new(-50.0).unwrap(),
        )])
        .unwrap();
        assert_eq!(model.predict(&foreign), None);
    }
}
