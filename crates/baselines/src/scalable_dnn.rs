//! Scalable-DNN (Kim, Lee & Huang): an encoding network producing
//! embeddings, followed by a feed-forward floor classifier emitting
//! one-hot floor ids — trained with the paper's pseudo-label protocol.

use crate::sae::{argmax_floor, one_hot};
use crate::{pseudo_labels, BaselineConfig, BaselineError, FloorClassifier, MatrixEncoder};
use grafics_nn::{Activation, Dense, Layer, Loss, Matrix, Sequential};
use grafics_types::{Dataset, FloorId, SignalRecord};
use rand::Rng;

/// Encoder + feed-forward classifier.
#[derive(Debug)]
pub struct ScalableDnn {
    encoder: MatrixEncoder,
    net: Sequential,
    floors: Vec<FloorId>,
}

impl ScalableDnn {
    /// Trains the model: an autoencoder learns the encoding network
    /// unsupervised, pseudo-labels are derived in its embedding space, and
    /// the encoder + classifier are then trained jointly with softmax
    /// cross-entropy on the (pseudo-)labelled one-hot floors.
    ///
    /// # Errors
    ///
    /// [`BaselineError::EmptyTrainingSet`] / [`BaselineError::NoLabeledSamples`].
    pub fn train<R: Rng + ?Sized>(
        train: &Dataset,
        config: &BaselineConfig,
        rng: &mut R,
    ) -> Result<Self, BaselineError> {
        if train.is_empty() {
            return Err(BaselineError::EmptyTrainingSet);
        }
        if train.samples().iter().all(|s| s.floor.is_none()) {
            return Err(BaselineError::NoLabeledSamples);
        }
        let encoder = MatrixEncoder::fit(train);
        let rows = encoder.encode_all(train);
        let x = Matrix::from_rows(&rows);
        let width = encoder.width();
        let hidden = (width / 2).clamp(config.dim.max(8), 128);

        // Stage 1: unsupervised encoding network (autoencoder).
        let mut ae = Sequential::new(vec![
            Box::new(Dense::new(width, hidden, rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(hidden, config.dim, rng)),
            Box::new(Activation::tanh()),
            Box::new(Dense::new(config.dim, width, rng)),
        ]);
        let pre_epochs = (config.epochs / 2).max(1);
        for _ in 0..pre_epochs {
            ae.train_epoch(&x, &x, Loss::Mse, config.lr, config.batch, rng);
        }
        let code = ae.forward_partial(&x, 4);
        let embeddings = grafics_types::RowMatrix::widen(&code);

        // Stage 2: pseudo-labels + supervised classifier.
        let labels: Vec<Option<FloorId>> = train.samples().iter().map(|s| s.floor).collect();
        let pl = pseudo_labels(&embeddings, &labels);
        let mut floors = pl.clone();
        floors.sort_unstable();
        floors.dedup();
        let y = one_hot(&pl, &floors);

        // Transplant the pretrained encoder stages, add the classifier.
        let mut pre = ae.into_layers().into_iter();
        let enc1 = pre.next().unwrap().into_dense().expect("dense");
        let _relu = pre.next();
        let enc2 = pre.next().unwrap().into_dense().expect("dense");
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(enc1),
            Box::new(Activation::relu()),
            Box::new(enc2),
            Box::new(Activation::tanh()),
            Box::new(Dense::new(config.dim, 32.min(hidden), rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(32.min(hidden), floors.len(), rng)),
        ];
        let mut net = Sequential::new(layers);
        for _ in 0..config.epochs {
            net.train_epoch(
                &x,
                &y,
                Loss::SoftmaxCrossEntropy,
                config.lr,
                config.batch,
                rng,
            );
        }
        Ok(ScalableDnn {
            encoder,
            net,
            floors,
        })
    }
}

impl FloorClassifier for ScalableDnn {
    fn name(&self) -> &'static str {
        "Scalable-DNN"
    }

    fn predict(&mut self, record: &SignalRecord) -> Option<FloorId> {
        let row = self.encoder.encode(record)?;
        let out = self.net.forward(&Matrix::from_rows(&[row]));
        Some(argmax_floor(out.row(0), &self.floors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_data::BuildingModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn scalable_dnn_learns_with_many_labels() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ds = BuildingModel::office("sd", 2)
            .with_records_per_floor(40)
            .simulate(&mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        let train = split.train.with_label_budget(30, &mut rng);
        let cfg = BaselineConfig {
            epochs: 30,
            ..Default::default()
        };
        let mut model = ScalableDnn::train(&train, &cfg, &mut rng).unwrap();
        let mut hits = 0;
        let mut total = 0;
        for s in split.test.samples() {
            if let Some(f) = model.predict(&s.record) {
                total += 1;
                if f == s.ground_truth {
                    hits += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            hits * 10 >= total * 6,
            "Scalable-DNN with many labels: {hits}/{total}"
        );
    }

    #[test]
    fn rejects_degenerate_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cfg = BaselineConfig::default();
        assert_eq!(
            ScalableDnn::train(&Dataset::default(), &cfg, &mut rng).unwrap_err(),
            BaselineError::EmptyTrainingSet
        );
    }

    #[test]
    fn predicts_known_floor_ids_only() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ds = BuildingModel::office("sd2", 3)
            .with_records_per_floor(20)
            .simulate(&mut rng);
        let train = ds.with_label_budget(5, &mut rng);
        let cfg = BaselineConfig {
            epochs: 5,
            ..Default::default()
        };
        let mut model = ScalableDnn::train(&train, &cfg, &mut rng).unwrap();
        for s in train.samples().iter().take(10) {
            let f = model.predict(&s.record).unwrap();
            assert!((0..3).contains(&f.0));
        }
    }
}
