//! The 1-D convolutional autoencoder + Prox baseline (§VI-A: "four layers
//! of 1-D convolution with the ReLU activation function").

use crate::prox::fit_prox;
use crate::{BaselineConfig, BaselineError, FloorClassifier, MatrixEncoder};
use grafics_cluster::ClusterModel;
use grafics_nn::{Activation, Conv1d, Dense, Layer, Loss, Matrix, Sequential};
use grafics_types::{Dataset, FloorId, SignalRecord};
use rand::Rng;

/// Conv-autoencoder embeddings + proximity clustering.
#[derive(Debug)]
pub struct AutoencoderProx {
    encoder: MatrixEncoder,
    net: Sequential,
    /// Number of leading layers that form the encoder (bottleneck output).
    encoder_layers: usize,
    clusters: ClusterModel,
}

impl AutoencoderProx {
    /// Trains the autoencoder on the matrix representation, then fits Prox
    /// over the bottleneck embeddings.
    ///
    /// # Errors
    ///
    /// [`BaselineError::EmptyTrainingSet`] / [`BaselineError::NoLabeledSamples`].
    pub fn train<R: Rng + ?Sized>(
        train: &Dataset,
        config: &BaselineConfig,
        rng: &mut R,
    ) -> Result<Self, BaselineError> {
        if train.is_empty() {
            return Err(BaselineError::EmptyTrainingSet);
        }
        let encoder = MatrixEncoder::fit(train);
        let rows = encoder.encode_all(train);
        let width = encoder.width();
        let (mut net, encoder_layers) = build_net(width, config.dim, rng);

        let x = Matrix::from_rows(&rows);
        for _ in 0..config.epochs {
            net.train_epoch(&x, &x, Loss::Mse, config.lr, config.batch, rng);
        }

        let code = net.forward_partial(&x, encoder_layers);
        let embeddings = grafics_types::RowMatrix::widen(&code);
        let labels: Vec<Option<FloorId>> = train.samples().iter().map(|s| s.floor).collect();
        let clusters = fit_prox(&embeddings, &labels)?;
        Ok(AutoencoderProx {
            encoder,
            net,
            encoder_layers,
            clusters,
        })
    }
}

/// Encoder: four Conv1d+ReLU stages (kernel/stride adapted to the input
/// width) → Dense bottleneck. Decoder: Dense → ReLU → Dense back to the
/// input width.
fn build_net<R: Rng + ?Sized>(width: usize, dim: usize, rng: &mut R) -> (Sequential, usize) {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let channels = [1usize, 4, 8, 8, 4];
    let mut len = width;
    for i in 0..4 {
        let kernel = len.min(if i < 2 { 5 } else { 3 }).max(1);
        let stride = if len >= 2 * kernel { 2 } else { 1 };
        let conv = Conv1d::new(channels[i], channels[i + 1], len, kernel, stride, rng);
        len = conv.out_len();
        layers.push(Box::new(conv));
        layers.push(Box::new(Activation::relu()));
    }
    let flat = channels[4] * len;
    layers.push(Box::new(Dense::new(flat, dim, rng)));
    let encoder_layers = layers.len();
    layers.push(Box::new(Activation::tanh()));
    layers.push(Box::new(Dense::new(dim, 64.min(width.max(8)), rng)));
    layers.push(Box::new(Activation::relu()));
    layers.push(Box::new(Dense::new(64.min(width.max(8)), width, rng)));
    (Sequential::new(layers), encoder_layers)
}

impl FloorClassifier for AutoencoderProx {
    fn name(&self) -> &'static str {
        "Autoencoder+Prox"
    }

    fn predict(&mut self, record: &SignalRecord) -> Option<FloorId> {
        let row = self.encoder.encode(record)?;
        let x = Matrix::from_rows(&[row]);
        let code = self.net.forward_partial(&x, self.encoder_layers);
        let emb: Vec<f64> = code.row(0).iter().map(|&v| f64::from(v)).collect();
        self.clusters.predict(&emb).ok().map(|p| p.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_data::BuildingModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn net_shapes_hold_for_small_and_large_widths() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for width in [10usize, 37, 120, 400] {
            let (mut net, enc_layers) = build_net(width, 8, &mut rng);
            let x = Matrix::zeros(2, width);
            let out = net.forward(&x);
            assert_eq!(out.cols(), width, "decoder restores width {width}");
            let code = net.forward_partial(&x, enc_layers);
            assert_eq!(code.cols(), 8);
        }
    }

    #[test]
    fn autoencoder_prox_end_to_end() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ds = BuildingModel::office("ae", 2)
            .with_records_per_floor(25)
            .simulate(&mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        let train = split.train.with_label_budget(4, &mut rng);
        let cfg = BaselineConfig {
            epochs: 10,
            ..Default::default()
        };
        let mut model = AutoencoderProx::train(&train, &cfg, &mut rng).unwrap();
        let scored = split
            .test
            .samples()
            .iter()
            .filter(|s| model.predict(&s.record).is_some())
            .count();
        assert!(scored * 10 >= split.test.len() * 9);
    }

    #[test]
    fn rejects_empty() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let cfg = BaselineConfig::default();
        assert_eq!(
            AutoencoderProx::train(&Dataset::default(), &cfg, &mut rng).unwrap_err(),
            BaselineError::EmptyTrainingSet
        );
    }
}
