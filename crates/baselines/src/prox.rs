//! The raw matrix + Prox baseline (Fig. 14), and the shared helper that
//! fits the proximity clustering over any baseline's embeddings.

use crate::{BaselineError, FloorClassifier, MatrixEncoder};
use grafics_cluster::{ClusterModel, ClusteringConfig};
use grafics_types::{Dataset, FloorId, RowMatrix, SignalRecord};

/// Fits the paper's proximity clustering over arbitrary embeddings
/// (one flat row per sample).
pub(crate) fn fit_prox(
    embeddings: &RowMatrix<f64>,
    labels: &[Option<FloorId>],
) -> Result<ClusterModel, BaselineError> {
    if embeddings.is_empty() {
        return Err(BaselineError::EmptyTrainingSet);
    }
    if labels.iter().all(|l| l.is_none()) {
        return Err(BaselineError::NoLabeledSamples);
    }
    Ok(ClusterModel::fit(
        embeddings,
        labels,
        &ClusteringConfig::default(),
    )?)
}

pub(crate) fn to_f64(row: &[f32]) -> Vec<f64> {
    row.iter().map(|&x| f64::from(x)).collect()
}

/// Widens nested `f32` rows into the flat `f64` matrix the cluster and
/// pseudo-label layers consume (one allocation, exact conversion).
pub(crate) fn widen_rows(rows: &[Vec<f32>]) -> RowMatrix<f64> {
    let mut m = RowMatrix::with_capacity(rows.len(), rows.first().map_or(0, Vec::len));
    for r in rows {
        m.push_row_widen(r);
    }
    m
}

/// The Fig. 14 "Matrix" baseline: the fixed-vocabulary rows (−120 dBm
/// fill) are used *directly* as embeddings for the proximity clustering.
/// Its poor accuracy demonstrates the missing-value problem.
#[derive(Debug, Clone)]
pub struct MatrixProx {
    encoder: MatrixEncoder,
    clusters: ClusterModel,
}

impl MatrixProx {
    /// Trains the baseline (no learning: just encode + cluster).
    ///
    /// # Errors
    ///
    /// [`BaselineError::EmptyTrainingSet`] / [`BaselineError::NoLabeledSamples`].
    pub fn train(train: &Dataset) -> Result<Self, BaselineError> {
        if train.is_empty() {
            return Err(BaselineError::EmptyTrainingSet);
        }
        let encoder = MatrixEncoder::fit(train);
        let rows = encoder.encode_all_raw(train);
        let embeddings = widen_rows(&rows);
        let labels: Vec<Option<FloorId>> = train.samples().iter().map(|s| s.floor).collect();
        let clusters = fit_prox(&embeddings, &labels)?;
        Ok(MatrixProx { encoder, clusters })
    }
}

impl FloorClassifier for MatrixProx {
    fn name(&self) -> &'static str {
        "Matrix+Prox"
    }

    fn predict(&mut self, record: &SignalRecord) -> Option<FloorId> {
        let row = self.encoder.encode_raw(record)?;
        self.clusters.predict(&to_f64(&row)).ok().map(|p| p.floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_data::BuildingModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn matrix_prox_runs_end_to_end() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ds = BuildingModel::office("mp", 2)
            .with_records_per_floor(30)
            .simulate(&mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        let train = split.train.with_label_budget(4, &mut rng);
        let mut model = MatrixProx::train(&train).unwrap();
        let mut scored = 0;
        for s in split.test.samples() {
            if model.predict(&s.record).is_some() {
                scored += 1;
            }
        }
        assert!(scored > 0);
    }

    #[test]
    fn matrix_prox_rejects_unlabeled() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ds = BuildingModel::office("mp", 2)
            .with_records_per_floor(10)
            .simulate(&mut rng)
            .unlabeled();
        assert_eq!(
            MatrixProx::train(&ds).unwrap_err(),
            BaselineError::NoLabeledSamples
        );
    }

    #[test]
    fn matrix_prox_rejects_empty() {
        assert_eq!(
            MatrixProx::train(&Dataset::default()).unwrap_err(),
            BaselineError::EmptyTrainingSet
        );
    }
}
