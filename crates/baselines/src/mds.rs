//! Classical multidimensional scaling + Prox (§VI-A baseline).
//!
//! The pairwise dissimilarity is `1 − cosine(row_a, row_b)` over the matrix
//! representation, per the paper. Embeddings come from the classical MDS
//! eigendecomposition (double-centred squared distances, top-`d`
//! eigenpairs via power iteration with deflation); new records are mapped
//! with the standard Gower out-of-sample extension.

use crate::prox::fit_prox;
use crate::{BaselineError, FloorClassifier, MatrixEncoder};
use grafics_cluster::ClusterModel;
use grafics_types::{Dataset, FloorId, SignalRecord};
use rand::Rng;

/// MDS embeddings + proximity clustering.
#[derive(Debug)]
pub struct MdsProx {
    encoder: MatrixEncoder,
    /// Training rows (needed for out-of-sample distances).
    rows: Vec<Vec<f32>>,
    /// Eigenvectors scaled by λ^{-1/2}, dim × n (for out-of-sample).
    inv_sqrt_components: Vec<Vec<f64>>,
    /// Column means of the squared-distance matrix.
    mean_sq: Vec<f64>,
    clusters: ClusterModel,
    dim: usize,
}

impl MdsProx {
    /// Fits classical MDS (to `dim` coordinates) and the Prox clustering.
    ///
    /// # Errors
    ///
    /// [`BaselineError::EmptyTrainingSet`] / [`BaselineError::NoLabeledSamples`].
    pub fn train<R: Rng + ?Sized>(
        train: &Dataset,
        dim: usize,
        rng: &mut R,
    ) -> Result<Self, BaselineError> {
        if train.is_empty() {
            return Err(BaselineError::EmptyTrainingSet);
        }
        let encoder = MatrixEncoder::fit(train);
        let rows = encoder.encode_all_raw(train);
        let n = rows.len();

        // Squared dissimilarity matrix d² = (1 − cos)².
        let mut d2 = vec![0.0f64; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let d = 1.0 - cosine(&rows[a], &rows[b]);
                let v = d * d;
                d2[a * n + b] = v;
                d2[b * n + a] = v;
            }
        }
        let mean_sq: Vec<f64> = (0..n)
            .map(|i| d2[i * n..(i + 1) * n].iter().sum::<f64>() / n as f64)
            .collect();
        let grand = mean_sq.iter().sum::<f64>() / n as f64;

        // Double centring: B = −½ (d² − row̄ − col̄ + grand).
        let mut b = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                b[i * n + j] = -0.5 * (d2[i * n + j] - mean_sq[i] - mean_sq[j] + grand);
            }
        }
        drop(d2);

        // Top-`dim` eigenpairs by power iteration + deflation.
        let mut coords = vec![vec![0.0f64; dim]; n];
        let mut inv_sqrt_components = Vec::with_capacity(dim);
        #[allow(clippy::needless_range_loop)]
        for k in 0..dim {
            let (lambda, v) = power_iteration(&b, n, rng);
            if lambda <= 1e-10 {
                inv_sqrt_components.push(vec![0.0; n]);
                continue;
            }
            let s = lambda.sqrt();
            for i in 0..n {
                coords[i][k] = v[i] * s;
            }
            inv_sqrt_components.push(v.iter().map(|&x| x / s).collect());
            // Deflate.
            for i in 0..n {
                for j in 0..n {
                    b[i * n + j] -= lambda * v[i] * v[j];
                }
            }
        }

        let labels: Vec<Option<FloorId>> = train.samples().iter().map(|s| s.floor).collect();
        let clusters = fit_prox(&grafics_types::RowMatrix::from_rows(&coords), &labels)?;
        Ok(MdsProx {
            encoder,
            rows,
            inv_sqrt_components,
            mean_sq,
            clusters,
            dim,
        })
    }

    /// Gower out-of-sample embedding of one encoded row.
    fn embed_row(&self, row: &[f32]) -> Vec<f64> {
        let n = self.rows.len();
        let delta2: Vec<f64> = (0..n)
            .map(|i| {
                let d = 1.0 - cosine(row, &self.rows[i]);
                d * d
            })
            .collect();
        (0..self.dim)
            .map(|k| {
                let comp = &self.inv_sqrt_components[k];
                0.5 * (0..n)
                    .map(|i| comp[i] * (self.mean_sq[i] - delta2[i]))
                    .sum::<f64>()
            })
            .collect()
    }
}

impl FloorClassifier for MdsProx {
    fn name(&self) -> &'static str {
        "MDS+Prox"
    }

    fn predict(&mut self, record: &SignalRecord) -> Option<FloorId> {
        let row = self.encoder.encode_raw(record)?;
        let emb = self.embed_row(&row);
        self.clusters.predict(&emb).ok().map(|p| p.floor)
    }
}

fn cosine(a: &[f32], b: &[f32]) -> f64 {
    let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        dot += f64::from(x) * f64::from(y);
        na += f64::from(x) * f64::from(x);
        nb += f64::from(y) * f64::from(y);
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Power iteration for the dominant eigenpair of symmetric `b` (n×n flat).
fn power_iteration<R: Rng + ?Sized>(b: &[f64], n: usize, rng: &mut R) -> (f64, Vec<f64>) {
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    normalize(&mut v);
    let mut lambda = 0.0;
    for _ in 0..100 {
        let mut w = vec![0.0; n];
        for i in 0..n {
            let row = &b[i * n..(i + 1) * n];
            w[i] = row.iter().zip(&v).map(|(&x, &y)| x * y).sum();
        }
        let new_lambda: f64 = v.iter().zip(&w).map(|(&x, &y)| x * y).sum();
        normalize(&mut w);
        let delta = (new_lambda - lambda).abs();
        v = w;
        lambda = new_lambda;
        if delta < 1e-9 * lambda.abs().max(1.0) {
            break;
        }
    }
    (lambda, v)
}

fn normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|&x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_data::BuildingModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-9);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn power_iteration_finds_dominant_eigenpair() {
        // Symmetric matrix with known spectrum: diag(5, 1).
        let b = vec![5.0, 0.0, 0.0, 1.0];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (lambda, v) = power_iteration(&b, 2, &mut rng);
        assert!((lambda - 5.0).abs() < 1e-6);
        assert!(v[0].abs() > 0.999);
    }

    #[test]
    fn mds_recovers_line_geometry() {
        // Three collinear "rows" with cosine distances that embed on a line:
        // the first coordinate should order them consistently.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ds = BuildingModel::office("mds", 2)
            .with_records_per_floor(20)
            .simulate(&mut rng);
        let train = ds.with_label_budget(3, &mut rng);
        let model = MdsProx::train(&train, 4, &mut rng).unwrap();
        // Out-of-sample embedding of a training row ≈ its training position.
        let emb0 = model.embed_row(&model.rows[0]);
        assert!(emb0.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn mds_end_to_end_predicts() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ds = BuildingModel::office("mds2", 2)
            .with_records_per_floor(25)
            .simulate(&mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        let train = split.train.with_label_budget(4, &mut rng);
        let mut model = MdsProx::train(&train, 8, &mut rng).unwrap();
        let scored = split
            .test
            .samples()
            .iter()
            .filter(|s| model.predict(&s.record).is_some())
            .count();
        assert!(scored * 10 >= split.test.len() * 9);
    }
}
