//! SAE: stacked autoencoders + classifier (Nowicki & Wietrzykowski,
//! "Low-effort place recognition with WiFi fingerprints using deep
//! learning"), trained with the paper's pseudo-label protocol.

use crate::{pseudo_labels, BaselineConfig, BaselineError, FloorClassifier, MatrixEncoder};
use grafics_nn::{Activation, Dense, Layer, Loss, Matrix, Sequential};
use grafics_types::{Dataset, FloorId, SignalRecord};
use rand::Rng;

/// Stacked-autoencoder floor classifier.
#[derive(Debug)]
pub struct Sae {
    encoder: MatrixEncoder,
    net: Sequential,
    floors: Vec<FloorId>,
}

impl Sae {
    /// Trains the SAE: layer-wise autoencoder pretraining of each dense
    /// stage, pseudo-labelling in the bottleneck space, then supervised
    /// fine-tuning of encoder + classifier with softmax cross-entropy.
    ///
    /// # Errors
    ///
    /// [`BaselineError::EmptyTrainingSet`] / [`BaselineError::NoLabeledSamples`].
    pub fn train<R: Rng + ?Sized>(
        train: &Dataset,
        config: &BaselineConfig,
        rng: &mut R,
    ) -> Result<Self, BaselineError> {
        if train.is_empty() {
            return Err(BaselineError::EmptyTrainingSet);
        }
        if train.samples().iter().all(|s| s.floor.is_none()) {
            return Err(BaselineError::NoLabeledSamples);
        }
        let encoder = MatrixEncoder::fit(train);
        let rows = encoder.encode_all(train);
        let x = Matrix::from_rows(&rows);
        let width = encoder.width();

        // Layer-wise pretraining: width → h1 → h2 → dim.
        let h1 = (width / 2).clamp(config.dim.max(4), 128);
        let h2 = (h1 / 2).clamp(config.dim.max(4), 64);
        let dims = [width, h1, h2, config.dim];
        let mut pretrained: Vec<Dense> = Vec::new();
        let mut current = x.clone();
        for w in dims.windows(2) {
            let (d_in, d_out) = (w[0], w[1]);
            let mut mini = Sequential::new(vec![
                Box::new(Dense::new(d_in, d_out, rng)),
                Box::new(Activation::tanh()),
                Box::new(Dense::new(d_out, d_in, rng)),
            ]);
            let pre_epochs = (config.epochs / 2).max(1);
            for _ in 0..pre_epochs {
                mini.train_epoch(&current, &current, Loss::Mse, config.lr, config.batch, rng);
            }
            current = mini.forward_partial(&current, 2);
            // Keep the mini-AE's first (encoder) layer with its weights.
            pretrained.push(take_first_dense(mini));
        }

        // Pseudo-labels in the pretrained bottleneck space.
        let embeddings = grafics_types::RowMatrix::widen(&current);
        let labels: Vec<Option<FloorId>> = train.samples().iter().map(|s| s.floor).collect();
        let pl = pseudo_labels(&embeddings, &labels);

        let mut floors: Vec<FloorId> = pl.clone();
        floors.sort_unstable();
        floors.dedup();
        let y = one_hot(&pl, &floors);

        // Stack encoder stages + classifier head, fine-tune end-to-end.
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        for dense in pretrained {
            layers.push(Box::new(dense));
            layers.push(Box::new(Activation::tanh()));
        }
        layers.push(Box::new(Dense::new(config.dim, floors.len(), rng)));
        let mut net = Sequential::new(layers);
        for _ in 0..config.epochs {
            net.train_epoch(
                &x,
                &y,
                Loss::SoftmaxCrossEntropy,
                config.lr,
                config.batch,
                rng,
            );
        }

        Ok(Sae {
            encoder,
            net,
            floors,
        })
    }
}

/// Extracts the first `Dense` layer from a consumed mini-autoencoder.
fn take_first_dense(net: Sequential) -> Dense {
    net.into_layers()
        .into_iter()
        .next()
        .and_then(|l| l.into_dense())
        .expect("mini-AE starts with Dense")
}

pub(crate) fn one_hot(labels: &[FloorId], floors: &[FloorId]) -> Matrix {
    let mut y = Matrix::zeros(labels.len(), floors.len());
    for (i, l) in labels.iter().enumerate() {
        let c = floors.binary_search(l).expect("label in floor set");
        y.set(i, c, 1.0);
    }
    y
}

pub(crate) fn argmax_floor(row: &[f32], floors: &[FloorId]) -> FloorId {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    floors[best]
}

impl FloorClassifier for Sae {
    fn name(&self) -> &'static str {
        "SAE"
    }

    fn predict(&mut self, record: &SignalRecord) -> Option<FloorId> {
        let row = self.encoder.encode(record)?;
        let out = self.net.forward(&Matrix::from_rows(&[row]));
        Some(argmax_floor(out.row(0), &self.floors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_data::BuildingModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn one_hot_and_argmax_roundtrip() {
        let floors = vec![FloorId(0), FloorId(2), FloorId(5)];
        let labels = vec![FloorId(2), FloorId(0), FloorId(5)];
        let y = one_hot(&labels, &floors);
        assert_eq!(y.get(0, 1), 1.0);
        assert_eq!(argmax_floor(y.row(0), &floors), FloorId(2));
        assert_eq!(argmax_floor(y.row(2), &floors), FloorId(5));
    }

    #[test]
    fn sae_learns_with_many_labels() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ds = BuildingModel::office("sae", 2)
            .with_records_per_floor(40)
            .simulate(&mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        // Plenty of labels: the supervised model should do decently.
        let train = split.train.with_label_budget(30, &mut rng);
        let cfg = BaselineConfig {
            epochs: 30,
            ..Default::default()
        };
        let mut model = Sae::train(&train, &cfg, &mut rng).unwrap();
        let mut hits = 0;
        let mut total = 0;
        for s in split.test.samples() {
            if let Some(f) = model.predict(&s.record) {
                total += 1;
                if f == s.ground_truth {
                    hits += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            hits * 10 >= total * 6,
            "SAE with many labels: {hits}/{total}"
        );
    }

    #[test]
    fn sae_rejects_degenerate_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cfg = BaselineConfig::default();
        assert_eq!(
            Sae::train(&Dataset::default(), &cfg, &mut rng).unwrap_err(),
            BaselineError::EmptyTrainingSet
        );
        let ds = BuildingModel::office("sx", 2)
            .with_records_per_floor(5)
            .simulate(&mut rng)
            .unlabeled();
        assert_eq!(
            Sae::train(&ds, &cfg, &mut rng).unwrap_err(),
            BaselineError::NoLabeledSamples
        );
    }
}
