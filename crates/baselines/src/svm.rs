//! Linear SVM floor classification (Zhang et al., §II [12]).
//!
//! The reference approach "needs to train support vectors for the
//! classification of every pair of floors" — i.e. one-vs-one linear SVMs
//! with majority voting, which the paper criticises as inconvenient (the
//! number of classifiers grows quadratically with floors). We train each
//! pairwise hinge-loss SVM by SGD (Pegasos-style) on the scaled matrix
//! rows, with the usual pseudo-labels for the unlabelled majority.

use crate::{pseudo_labels, BaselineConfig, BaselineError, FloorClassifier, MatrixEncoder};
use grafics_types::{Dataset, FloorId, SignalRecord};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// One-vs-one linear SVM committee.
#[derive(Debug)]
pub struct SvmOvO {
    encoder: MatrixEncoder,
    /// One `(floor_a, floor_b, w, bias)` per unordered pair, `a < b`.
    machines: Vec<(FloorId, FloorId, Vec<f32>, f32)>,
    floors: Vec<FloorId>,
}

impl SvmOvO {
    /// Trains all `n·(n−1)/2` pairwise SVMs.
    ///
    /// # Errors
    ///
    /// [`BaselineError::EmptyTrainingSet`] / [`BaselineError::NoLabeledSamples`].
    pub fn train<R: Rng + ?Sized>(
        train: &Dataset,
        config: &BaselineConfig,
        rng: &mut R,
    ) -> Result<Self, BaselineError> {
        if train.is_empty() {
            return Err(BaselineError::EmptyTrainingSet);
        }
        if train.samples().iter().all(|s| s.floor.is_none()) {
            return Err(BaselineError::NoLabeledSamples);
        }
        let encoder = MatrixEncoder::fit(train);
        let rows = encoder.encode_all(train);

        // Pseudo-labels computed directly in input space (the SVM has no
        // learned embedding of its own).
        let embeddings = crate::prox::widen_rows(&rows);
        let labels: Vec<Option<FloorId>> = train.samples().iter().map(|s| s.floor).collect();
        let pl = pseudo_labels(&embeddings, &labels);
        let mut floors = pl.clone();
        floors.sort_unstable();
        floors.dedup();

        // Index rows by class.
        let mut by_floor: HashMap<FloorId, Vec<usize>> = HashMap::new();
        for (i, &f) in pl.iter().enumerate() {
            by_floor.entry(f).or_default().push(i);
        }

        let mut machines = Vec::new();
        for ai in 0..floors.len() {
            for bi in (ai + 1)..floors.len() {
                let (fa, fb) = (floors[ai], floors[bi]);
                let (w, bias) = train_pair(
                    &rows,
                    &by_floor[&fa],
                    &by_floor[&fb],
                    config.epochs.max(10),
                    rng,
                );
                machines.push((fa, fb, w, bias));
            }
        }
        Ok(SvmOvO {
            encoder,
            machines,
            floors,
        })
    }

    /// Number of pairwise machines (the paper's quadratic-growth pain).
    #[must_use]
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }
}

/// Pegasos SGD for one `a (+1)` vs `b (−1)` hinge-loss SVM.
fn train_pair<R: Rng + ?Sized>(
    rows: &[Vec<f32>],
    pos: &[usize],
    neg: &[usize],
    epochs: usize,
    rng: &mut R,
) -> (Vec<f32>, f32) {
    let d = rows[0].len();
    let mut w = vec![0.0f32; d];
    let mut bias = 0.0f32;
    let lambda = 1e-3f32;
    let mut order: Vec<(usize, f32)> = pos
        .iter()
        .map(|&i| (i, 1.0))
        .chain(neg.iter().map(|&i| (i, -1.0)))
        .collect();
    let mut t = 1usize;
    for _ in 0..epochs {
        order.shuffle(rng);
        for &(i, y) in &order {
            let eta = 1.0 / (lambda * t as f32);
            let margin = y * (dot(&w, &rows[i]) + bias);
            // w ← (1 − ηλ) w [+ η y x if margin violated]
            let shrink = 1.0 - eta * lambda;
            for v in &mut w {
                *v *= shrink;
            }
            if margin < 1.0 {
                for (wv, &xv) in w.iter_mut().zip(&rows[i]) {
                    *wv += eta * y * xv;
                }
                bias += eta * y;
            }
            t += 1;
        }
    }
    (w, bias)
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

impl FloorClassifier for SvmOvO {
    fn name(&self) -> &'static str {
        "SVM-OvO"
    }

    fn predict(&mut self, record: &SignalRecord) -> Option<FloorId> {
        let row = self.encoder.encode(record)?;
        let mut votes: HashMap<FloorId, usize> = HashMap::new();
        for (fa, fb, w, bias) in &self.machines {
            let winner = if dot(w, &row) + bias >= 0.0 { *fa } else { *fb };
            *votes.entry(winner).or_default() += 1;
        }
        // Majority vote; ties broken by lower floor for determinism.
        self.floors
            .iter()
            .max_by_key(|f| (votes.get(f).copied().unwrap_or(0), std::cmp::Reverse(f.0)))
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_data::BuildingModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn machine_count_is_quadratic() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ds = BuildingModel::office("svm", 4)
            .with_records_per_floor(20)
            .simulate(&mut rng);
        let train = ds.with_label_budget(5, &mut rng);
        let model = SvmOvO::train(&train, &BaselineConfig::default(), &mut rng).unwrap();
        assert_eq!(model.machine_count(), 6); // C(4, 2)
    }

    #[test]
    fn svm_learns_with_many_labels() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ds = BuildingModel::office("svm2", 2)
            .with_records_per_floor(40)
            .simulate(&mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        let train = split.train.with_label_budget(25, &mut rng);
        let mut model = SvmOvO::train(&train, &BaselineConfig::default(), &mut rng).unwrap();
        let mut hits = 0;
        let mut total = 0;
        for s in split.test.samples() {
            if let Some(f) = model.predict(&s.record) {
                total += 1;
                if f == s.ground_truth {
                    hits += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            hits * 10 >= total * 6,
            "SVM with many labels: {hits}/{total}"
        );
    }

    #[test]
    fn pegasos_separates_linearly_separable_data() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let rows: Vec<Vec<f32>> = (0..40)
            .map(|i| {
                let c = if i < 20 { -2.0 } else { 2.0 };
                vec![c + rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)]
            })
            .collect();
        let pos: Vec<usize> = (0..20).collect();
        let neg: Vec<usize> = (20..40).collect();
        let (w, b) = train_pair(&rows, &pos, &neg, 80, &mut rng);
        let correct = rows
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                let y = if *i < 20 { 1.0 } else { -1.0 };
                y * (dot(&w, r) + b) > 0.0
            })
            .count();
        assert!(correct >= 37, "{correct}/40");
    }

    #[test]
    fn rejects_degenerate_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(
            SvmOvO::train(&Dataset::default(), &BaselineConfig::default(), &mut rng).unwrap_err(),
            BaselineError::EmptyTrainingSet
        );
    }
}
