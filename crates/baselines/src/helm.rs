//! HELM: hierarchical extreme learning machine for floor detection
//! (Alitaleshi, Jazayeriy & Kazemitabar, §II [16]).
//!
//! ELM layers have *random, untrained* hidden weights; only output maps
//! are learned, each in closed form by ridge regression — no gradient
//! descent anywhere. HELM stacks ELM *autoencoder* stages for feature
//! extraction and finishes with an ELM classifier:
//!
//! - ELM-AE stage on input `X` (n×d): draw random `W` (d×h) and bias,
//!   form `H = tanh(X W + b)`, solve `H β ≈ X` by ridge regression, and
//!   take `F = X βᵀ` (n×h) as the learned features.
//! - classifier: `H_c = tanh(F W_c + b_c)`, solve `H_c W_out ≈ Y` against
//!   one-hot floors (pseudo-labelled like every supervised baseline).

use crate::sae::{argmax_floor, one_hot};
use crate::{pseudo_labels, BaselineConfig, BaselineError, FloorClassifier, MatrixEncoder};
use grafics_nn::{linalg::ridge_solve, Matrix};
use grafics_types::{Dataset, FloorId, SignalRecord};
use rand::Rng;

/// One ELM-AE stage: the learned linear map `x ↦ x βᵀ` (and the random
/// projection used to learn it, kept for reproducibility/debugging).
#[derive(Debug)]
struct ElmAeStage {
    /// βᵀ, shape (d_in × d_out).
    transform: Matrix,
}

impl ElmAeStage {
    fn fit<R: Rng + ?Sized>(x: &Matrix, out_dim: usize, rng: &mut R) -> Self {
        let w = Matrix::glorot(x.cols(), out_dim, rng);
        let b: Vec<f32> = (0..out_dim).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let mut h = x.matmul(&w);
        h.add_row_broadcast(&b);
        for v in h.data_mut() {
            *v = v.tanh();
        }
        // β solves H β ≈ X  (out_dim × d_in); the feature map is X βᵀ.
        let beta = ridge_solve(&h, x, 1e-2);
        // transform = βᵀ : (d_in × out_dim)
        let mut transform = Matrix::zeros(x.cols(), out_dim);
        for i in 0..out_dim {
            for j in 0..x.cols() {
                transform.set(j, i, beta.get(i, j));
            }
        }
        ElmAeStage { transform }
    }

    fn apply(&self, x: &Matrix) -> Matrix {
        let mut f = x.matmul(&self.transform);
        for v in f.data_mut() {
            *v = v.tanh();
        }
        f
    }
}

/// Hierarchical extreme learning machine floor classifier.
#[derive(Debug)]
pub struct Helm {
    encoder: MatrixEncoder,
    stages: Vec<ElmAeStage>,
    clf_random_w: Matrix,
    clf_random_b: Vec<f32>,
    clf_w: Matrix,
    floors: Vec<FloorId>,
}

impl Helm {
    /// Trains the HELM: two stacked ELM-AE stages, pseudo-labelling in
    /// the feature space, then a closed-form ELM classifier.
    ///
    /// # Errors
    ///
    /// [`BaselineError::EmptyTrainingSet`] / [`BaselineError::NoLabeledSamples`].
    pub fn train<R: Rng + ?Sized>(
        train: &Dataset,
        config: &BaselineConfig,
        rng: &mut R,
    ) -> Result<Self, BaselineError> {
        if train.is_empty() {
            return Err(BaselineError::EmptyTrainingSet);
        }
        if train.samples().iter().all(|s| s.floor.is_none()) {
            return Err(BaselineError::NoLabeledSamples);
        }
        let encoder = MatrixEncoder::fit(train);
        let rows = encoder.encode_all(train);
        let x = Matrix::from_rows(&rows);
        let width = encoder.width();
        let h1 = (width / 2).clamp(config.dim.max(16), 256);
        let h2 = config.dim.max(8);

        // Stacked ELM-AE feature extraction.
        let stage1 = ElmAeStage::fit(&x, h1, rng);
        let f1 = stage1.apply(&x);
        let stage2 = ElmAeStage::fit(&f1, h2, rng);
        let features = stage2.apply(&f1);
        let stages = vec![stage1, stage2];

        // Pseudo-labels in the HELM feature space.
        let embeddings = grafics_types::RowMatrix::widen(&features);
        let labels: Vec<Option<FloorId>> = train.samples().iter().map(|s| s.floor).collect();
        let pl = pseudo_labels(&embeddings, &labels);
        let mut floors = pl.clone();
        floors.sort_unstable();
        floors.dedup();
        let y = one_hot(&pl, &floors);

        // ELM classifier head.
        let clf_hidden = (4 * h2).min(256);
        let clf_random_w = Matrix::glorot(h2, clf_hidden, rng);
        let clf_random_b: Vec<f32> = (0..clf_hidden).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let hc = random_hidden(&features, &clf_random_w, &clf_random_b);
        let clf_w = ridge_solve(&hc, &y, 1e-1);

        Ok(Helm {
            encoder,
            stages,
            clf_random_w,
            clf_random_b,
            clf_w,
            floors,
        })
    }

    fn features_of(&self, row: Vec<f32>) -> Matrix {
        let mut f = Matrix::from_rows(&[row]);
        for stage in &self.stages {
            f = stage.apply(&f);
        }
        f
    }
}

/// `tanh(X W + b)` with row-broadcast bias.
fn random_hidden(x: &Matrix, w: &Matrix, b: &[f32]) -> Matrix {
    let mut h = x.matmul(w);
    h.add_row_broadcast(b);
    for v in h.data_mut() {
        *v = v.tanh();
    }
    h
}

impl FloorClassifier for Helm {
    fn name(&self) -> &'static str {
        "HELM"
    }

    fn predict(&mut self, record: &SignalRecord) -> Option<FloorId> {
        let row = self.encoder.encode(record)?;
        let features = self.features_of(row);
        let hc = random_hidden(&features, &self.clf_random_w, &self.clf_random_b);
        let out = hc.matmul(&self.clf_w);
        Some(argmax_floor(out.row(0), &self.floors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_data::BuildingModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn accuracy(seed: u64, labels: usize) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ds = BuildingModel::office("helm", 2)
            .with_records_per_floor(40)
            .simulate(&mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        let train = split.train.with_label_budget(labels, &mut rng);
        let cfg = BaselineConfig::default();
        let mut model = Helm::train(&train, &cfg, &mut rng).unwrap();
        let mut hits = 0;
        let mut total = 0;
        for s in split.test.samples() {
            if let Some(f) = model.predict(&s.record) {
                total += 1;
                if f == s.ground_truth {
                    hits += 1;
                }
            }
        }
        hits as f64 / total.max(1) as f64
    }

    #[test]
    fn helm_learns_with_many_labels() {
        let acc = accuracy(0, 25);
        assert!(acc >= 0.6, "HELM with many labels: {acc}");
    }

    #[test]
    fn elm_ae_stage_preserves_information() {
        // The stage must reconstruct X decently: features through βᵀ are a
        // linear view of X, so a k-NN over features should roughly agree
        // with a k-NN over X on clustered data.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut rows = Vec::new();
        for i in 0..40 {
            let c = if i < 20 { 0.0f32 } else { 1.0 };
            rows.push(
                (0..10)
                    .map(|d| c + 0.05 * ((i * d) % 7) as f32)
                    .collect::<Vec<f32>>(),
            );
        }
        let x = Matrix::from_rows(&rows);
        let stage = ElmAeStage::fit(&x, 4, &mut rng);
        let f = stage.apply(&x);
        // Points from the same blob should be nearer in feature space.
        let dist = |a: usize, b: usize| -> f32 {
            (0..4).map(|d| (f.get(a, d) - f.get(b, d)).powi(2)).sum()
        };
        let intra = dist(0, 5);
        let inter = dist(0, 25);
        assert!(inter > intra, "inter {inter} vs intra {intra}");
    }

    #[test]
    fn training_is_fast_closed_form() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ds = BuildingModel::office("helm2", 3)
            .with_records_per_floor(60)
            .simulate(&mut rng);
        let train = ds.with_label_budget(4, &mut rng);
        let t0 = std::time::Instant::now();
        let _ = Helm::train(&train, &BaselineConfig::default(), &mut rng).unwrap();
        assert!(t0.elapsed().as_secs_f64() < 30.0);
    }

    #[test]
    fn rejects_degenerate_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cfg = BaselineConfig::default();
        assert_eq!(
            Helm::train(&Dataset::default(), &cfg, &mut rng).unwrap_err(),
            BaselineError::EmptyTrainingSet
        );
    }
}
