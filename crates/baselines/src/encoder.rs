//! The fixed-vocabulary matrix representation (and its missing-value
//! problem) that all baselines build on.

use grafics_types::{Dataset, MacAddr, SignalRecord};
use std::collections::HashMap;

/// Sentinel for unobserved MACs, per the paper: −120 dBm.
pub const MISSING_DBM: f64 = -120.0;

/// Encodes variable-length records into fixed-length rows over the
/// training MAC vocabulary, missing entries filled with [`MISSING_DBM`]
/// and values scaled to `[0, 1]` (`(rss + 120) / 120`).
#[derive(Debug, Clone)]
pub struct MatrixEncoder {
    vocab: Vec<MacAddr>,
    index: HashMap<MacAddr, usize>,
}

impl MatrixEncoder {
    /// Builds the vocabulary from every MAC in `dataset`, ascending.
    #[must_use]
    pub fn fit(dataset: &Dataset) -> Self {
        let vocab = dataset.mac_vocabulary();
        let index = vocab.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        MatrixEncoder { vocab, index }
    }

    /// Vocabulary size (row width).
    #[must_use]
    pub fn width(&self) -> usize {
        self.vocab.len()
    }

    /// Encodes one record with values scaled to `[0, 1]` and missing
    /// entries at `0` — the preprocessing the neural baselines use.
    /// Returns `None` if the record shares no MAC with the vocabulary.
    #[must_use]
    pub fn encode(&self, record: &SignalRecord) -> Option<Vec<f32>> {
        let mut row = vec![((MISSING_DBM + 120.0) / 120.0) as f32; self.vocab.len()];
        let mut any = false;
        for r in record.readings() {
            if let Some(&i) = self.index.get(&r.mac) {
                row[i] = ((r.rssi.dbm() + 120.0) / 120.0) as f32;
                any = true;
            }
        }
        any.then_some(row)
    }

    /// Encodes one record with **raw dBm values** and missing entries at
    /// −120 dBm — the literal matrix representation of the paper's Fig. 2
    /// / Fig. 14, where shared missingness dominates any similarity
    /// measure (the "missing value problem"). Used by [`crate::MatrixProx`]
    /// and [`crate::MdsProx`], matching §VI-A/§VI-C. Returns `None` if the
    /// record shares no MAC with the vocabulary.
    #[must_use]
    pub fn encode_raw(&self, record: &SignalRecord) -> Option<Vec<f32>> {
        let mut row = vec![MISSING_DBM as f32; self.vocab.len()];
        let mut any = false;
        for r in record.readings() {
            if let Some(&i) = self.index.get(&r.mac) {
                row[i] = r.rssi.dbm() as f32;
                any = true;
            }
        }
        any.then_some(row)
    }

    /// Raw-dBm variant of [`MatrixEncoder::encode_all`].
    #[must_use]
    pub fn encode_all_raw(&self, dataset: &Dataset) -> Vec<Vec<f32>> {
        dataset
            .samples()
            .iter()
            .map(|s| {
                self.encode_raw(&s.record)
                    .unwrap_or_else(|| vec![MISSING_DBM as f32; self.vocab.len()])
            })
            .collect()
    }

    /// Encodes every record of a dataset (rows in dataset order). Records
    /// with no in-vocabulary MAC become all-missing rows.
    #[must_use]
    pub fn encode_all(&self, dataset: &Dataset) -> Vec<Vec<f32>> {
        dataset
            .samples()
            .iter()
            .map(|s| {
                self.encode(&s.record)
                    .unwrap_or_else(|| vec![0.0; self.vocab.len()])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_types::{FloorId, Reading, Rssi, Sample};

    fn sample(macs: &[(u64, f64)]) -> Sample {
        Sample::labeled(
            SignalRecord::new(
                macs.iter()
                    .map(|&(m, r)| Reading::new(MacAddr::from_u64(m), Rssi::new(r).unwrap()))
                    .collect(),
            )
            .unwrap(),
            FloorId(0),
        )
    }

    #[test]
    fn missing_entries_get_sentinel() {
        let ds = Dataset::from_samples(vec![sample(&[(1, -60.0)]), sample(&[(2, -90.0)])]);
        let enc = MatrixEncoder::fit(&ds);
        assert_eq!(enc.width(), 2);
        let row = enc.encode(&ds.samples()[0].record).unwrap();
        assert!((row[0] - 0.5).abs() < 1e-6); // (-60+120)/120
        assert_eq!(row[1], 0.0); // missing → (−120+120)/120
    }

    #[test]
    fn out_of_vocab_record_is_none() {
        let ds = Dataset::from_samples(vec![sample(&[(1, -60.0)])]);
        let enc = MatrixEncoder::fit(&ds);
        assert!(enc.encode(&sample(&[(99, -50.0)]).record).is_none());
    }

    #[test]
    fn encode_all_is_dataset_ordered() {
        let ds = Dataset::from_samples(vec![sample(&[(1, -30.0)]), sample(&[(1, -90.0)])]);
        let enc = MatrixEncoder::fit(&ds);
        let rows = enc.encode_all(&ds);
        assert!(rows[0][0] > rows[1][0]);
    }
}
