//! StoryTeller-style baseline (Elbakly & Youssef, §II [27]).
//!
//! StoryTeller "converts RF signals to images based on APs with strong
//! signal strengths and then trains a convolutional neural network model
//! for floor classification". Like ViFi it needs the APs' physical
//! locations — unavailable in crowdsourced corpora — so, as with
//! [`crate::ViFi`], we implement it as an **oracle-information
//! comparator** fed the simulator's true AP map.
//!
//! Each scan becomes a single-channel `G × G` image over the floor plate:
//! pixel intensity is the strongest scaled RSS among the APs located in
//! that cell (strong APs paint bright pixels near the user). A small CNN
//! (two Conv2d+ReLU stages and a dense head) classifies the floor,
//! trained with the usual pseudo-labels.

use crate::sae::{argmax_floor, one_hot};
use crate::{pseudo_labels, BaselineConfig, BaselineError, FloorClassifier};
use grafics_data::BuildingLayout;
use grafics_nn::{Activation, Conv2d, Dense, Loss, Matrix, Sequential};
use grafics_types::{Dataset, FloorId, MacAddr, SignalRecord};
use rand::Rng;
use std::collections::HashMap;

/// CNN over AP-position images, with oracle AP locations.
#[derive(Debug)]
pub struct StoryTeller {
    grid: usize,
    cell_of: HashMap<MacAddr, usize>,
    net: Sequential,
    floors: Vec<FloorId>,
}

impl StoryTeller {
    /// Trains the CNN on scan images. `grid` is the image side length
    /// (the paper uses small fixed-size images; 12–16 works well).
    ///
    /// # Errors
    ///
    /// [`BaselineError::EmptyTrainingSet`] / [`BaselineError::NoLabeledSamples`].
    pub fn train<R: Rng + ?Sized>(
        train: &Dataset,
        layout: &BuildingLayout,
        width_m: f64,
        depth_m: f64,
        grid: usize,
        config: &BaselineConfig,
        rng: &mut R,
    ) -> Result<Self, BaselineError> {
        if train.is_empty() {
            return Err(BaselineError::EmptyTrainingSet);
        }
        if train.samples().iter().all(|s| s.floor.is_none()) {
            return Err(BaselineError::NoLabeledSamples);
        }
        let grid = grid.max(4);
        // Map each AP to its image cell (position is oracle information).
        let cell_of: HashMap<MacAddr, usize> = layout
            .aps
            .iter()
            .map(|ap| {
                let gx = ((ap.x / width_m) * grid as f64).min(grid as f64 - 1.0) as usize;
                let gy = ((ap.y / depth_m) * grid as f64).min(grid as f64 - 1.0) as usize;
                (ap.mac, gy * grid + gx)
            })
            .collect();

        let images: Vec<Vec<f32>> = train
            .samples()
            .iter()
            .map(|s| render_image(&s.record, &cell_of, grid))
            .collect();
        let x = Matrix::from_rows(&images);

        // Pseudo-labels in image space.
        let embeddings = grafics_types::RowMatrix::widen(&x);
        let labels: Vec<Option<FloorId>> = train.samples().iter().map(|s| s.floor).collect();
        let pl = pseudo_labels(&embeddings, &labels);
        let mut floors = pl.clone();
        floors.sort_unstable();
        floors.dedup();
        let y = one_hot(&pl, &floors);

        // CNN: Conv(1→8, k3, s2) → ReLU → Conv(8→16, k3, s1|2) → ReLU →
        // Dense → ReLU → Dense(classes).
        let conv1 = Conv2d::new(1, 8, grid, grid, 3, 2, rng);
        let (h1, w1) = conv1.out_dims();
        let stride2 = if h1.min(w1) >= 6 { 2 } else { 1 };
        let k2 = 3.min(h1).min(w1);
        let conv2 = Conv2d::new(8, 16, h1, w1, k2, stride2, rng);
        let flat = conv2.out_width();
        let mut net = Sequential::new(vec![
            Box::new(conv1),
            Box::new(Activation::relu()),
            Box::new(conv2),
            Box::new(Activation::relu()),
            Box::new(Dense::new(flat, 32, rng)),
            Box::new(Activation::relu()),
            Box::new(Dense::new(32, floors.len(), rng)),
        ]);
        for _ in 0..config.epochs {
            net.train_epoch(
                &x,
                &y,
                Loss::SoftmaxCrossEntropy,
                config.lr,
                config.batch,
                rng,
            );
        }
        Ok(StoryTeller {
            grid,
            cell_of,
            net,
            floors,
        })
    }
}

/// Rasterises a scan: per cell, the strongest scaled RSS among the cell's
/// observed APs; weak signals (< −85 dBm) are dropped, per the
/// "strong-signal APs" rule.
fn render_image(record: &SignalRecord, cell_of: &HashMap<MacAddr, usize>, grid: usize) -> Vec<f32> {
    let mut img = vec![0.0f32; grid * grid];
    for r in record.readings() {
        if r.rssi.dbm() < -85.0 {
            continue;
        }
        if let Some(&cell) = cell_of.get(&r.mac) {
            let intensity = ((r.rssi.dbm() + 85.0) / 85.0) as f32;
            if intensity > img[cell] {
                img[cell] = intensity;
            }
        }
    }
    img
}

impl FloorClassifier for StoryTeller {
    fn name(&self) -> &'static str {
        "StoryTeller"
    }

    fn predict(&mut self, record: &SignalRecord) -> Option<FloorId> {
        let img = render_image(record, &self.cell_of, self.grid);
        if img.iter().all(|&v| v == 0.0) {
            return None; // no strong in-map AP
        }
        let out = self.net.forward(&Matrix::from_rows(&[img]));
        Some(argmax_floor(out.row(0), &self.floors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_data::BuildingModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn image_rendering_places_strong_aps() {
        let mut cell_of = HashMap::new();
        cell_of.insert(MacAddr::from_u64(1), 0);
        cell_of.insert(MacAddr::from_u64(2), 5);
        let rec = SignalRecord::new(vec![
            grafics_types::Reading::new(
                MacAddr::from_u64(1),
                grafics_types::Rssi::new(-40.0).unwrap(),
            ),
            grafics_types::Reading::new(
                MacAddr::from_u64(2),
                grafics_types::Rssi::new(-90.0).unwrap(),
            ),
            grafics_types::Reading::new(
                MacAddr::from_u64(9),
                grafics_types::Rssi::new(-40.0).unwrap(),
            ),
        ])
        .unwrap();
        let img = render_image(&rec, &cell_of, 4);
        assert!(img[0] > 0.5, "strong AP paints its cell");
        assert_eq!(img[5], 0.0, "weak AP dropped");
        assert_eq!(
            img.iter().filter(|&&v| v > 0.0).count(),
            1,
            "unknown AP ignored"
        );
    }

    #[test]
    fn storyteller_learns_with_oracle_positions() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let b = BuildingModel::office("st", 2).with_records_per_floor(50);
        let layout = b.layout(&mut rng);
        let ds = b.simulate_with_layout(&layout, &mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        let train = split.train.with_label_budget(20, &mut rng);
        let cfg = BaselineConfig {
            epochs: 30,
            ..Default::default()
        };
        let mut model =
            StoryTeller::train(&train, &layout, b.width_m, b.depth_m, 12, &cfg, &mut rng).unwrap();
        let mut hits = 0;
        let mut total = 0;
        for s in split.test.samples() {
            if let Some(f) = model.predict(&s.record) {
                total += 1;
                if f == s.ground_truth {
                    hits += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(hits * 10 >= total * 6, "StoryTeller: {hits}/{total}");
    }

    #[test]
    fn rejects_degenerate_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let b = BuildingModel::office("st2", 2).with_records_per_floor(5);
        let layout = b.layout(&mut rng);
        let cfg = BaselineConfig::default();
        assert_eq!(
            StoryTeller::train(&Dataset::default(), &layout, 10.0, 10.0, 8, &cfg, &mut rng)
                .unwrap_err(),
            BaselineError::EmptyTrainingSet
        );
    }
}
