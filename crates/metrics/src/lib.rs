//! Micro- and macro-averaged precision, recall and F-score, exactly as
//! defined in §VI-A of the GRAFICS paper.
//!
//! For floor `i` with true positives `TP_i`, false positives `FP_i`
//! (samples of other floors predicted as `i`) and false negatives `FN_i`
//! (samples of floor `i` predicted elsewhere):
//!
//! - `P_i = TP_i / (TP_i + FP_i)`, `R_i = TP_i / (TP_i + FN_i)`,
//!   `F_i = 2 P_i R_i / (P_i + R_i)`;
//! - **micro** metrics pool the counts over floors before dividing;
//! - **macro** metrics average the per-floor `P_i` / `R_i`, then combine.
//!
//! # Examples
//!
//! ```
//! use grafics_metrics::ConfusionMatrix;
//! use grafics_types::FloorId;
//!
//! let mut cm = ConfusionMatrix::new();
//! cm.observe(FloorId(0), FloorId(0));
//! cm.observe(FloorId(0), FloorId(1)); // floor 0 misread as floor 1
//! cm.observe(FloorId(1), FloorId(1));
//! cm.observe(FloorId(1), FloorId(1));
//! let report = cm.report();
//! assert!((report.micro_f - 0.75).abs() < 1e-12);
//! assert!(report.macro_f > 0.7 && report.macro_f < 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use grafics_types::FloorId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A confusion matrix over floors, accumulated one prediction at a time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// `counts[(truth, predicted)]` = number of observations.
    counts: BTreeMap<(FloorId, FloorId), usize>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `(ground truth, predicted)` observation.
    pub fn observe(&mut self, truth: FloorId, predicted: FloorId) {
        *self.counts.entry((truth, predicted)).or_insert(0) += 1;
    }

    /// Builds a matrix from parallel slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[must_use]
    pub fn from_pairs(truth: &[FloorId], predicted: &[FloorId]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "parallel slices required");
        let mut cm = Self::new();
        for (&t, &p) in truth.iter().zip(predicted) {
            cm.observe(t, p);
        }
        cm
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// All floors appearing as truth or prediction, ascending.
    #[must_use]
    pub fn floors(&self) -> Vec<FloorId> {
        let mut floors: Vec<FloorId> = self.counts.keys().flat_map(|&(t, p)| [t, p]).collect();
        floors.sort_unstable();
        floors.dedup();
        floors
    }

    /// Count of observations with `truth` and `predicted`.
    #[must_use]
    pub fn count(&self, truth: FloorId, predicted: FloorId) -> usize {
        self.counts.get(&(truth, predicted)).copied().unwrap_or(0)
    }

    /// Computes the full report. Returns all-zero metrics on an empty
    /// matrix.
    #[must_use]
    pub fn report(&self) -> ClassificationReport {
        let floors = self.floors();
        let n = floors.len();
        let mut per_floor = Vec::with_capacity(n);
        let (mut tp_sum, mut fp_sum, mut fn_sum) = (0usize, 0usize, 0usize);
        let (mut p_sum, mut r_sum) = (0.0f64, 0.0f64);

        for &f in &floors {
            let tp = self.count(f, f);
            let fp: usize = floors
                .iter()
                .filter(|&&t| t != f)
                .map(|&t| self.count(t, f))
                .sum();
            let fn_: usize = floors
                .iter()
                .filter(|&&p| p != f)
                .map(|&p| self.count(f, p))
                .sum();
            let precision = ratio(tp, tp + fp);
            let recall = ratio(tp, tp + fn_);
            per_floor.push(FloorMetrics {
                floor: f,
                tp,
                fp,
                fn_,
                precision,
                recall,
                f_score: harmonic(precision, recall),
            });
            tp_sum += tp;
            fp_sum += fp;
            fn_sum += fn_;
            p_sum += precision;
            r_sum += recall;
        }

        let micro_p = ratio(tp_sum, tp_sum + fp_sum);
        let micro_r = ratio(tp_sum, tp_sum + fn_sum);
        let (macro_p, macro_r) = if n == 0 {
            (0.0, 0.0)
        } else {
            (p_sum / n as f64, r_sum / n as f64)
        };
        ClassificationReport {
            micro_p,
            micro_r,
            micro_f: harmonic(micro_p, micro_r),
            macro_p,
            macro_r,
            macro_f: harmonic(macro_p, macro_r),
            accuracy: ratio(tp_sum, self.total()),
            per_floor,
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn harmonic(p: f64, r: f64) -> f64 {
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Per-floor counts and metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloorMetrics {
    /// The floor.
    pub floor: FloorId,
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// `P_i`.
    pub precision: f64,
    /// `R_i`.
    pub recall: f64,
    /// `F_i`.
    pub f_score: f64,
}

impl std::fmt::Display for ConfusionMatrix {
    /// Renders the matrix as a table, truth in rows, prediction in columns.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let floors = self.floors();
        write!(f, "{:>8}", "truth\\pred")?;
        for p in &floors {
            write!(f, " {:>6}", p.to_string())?;
        }
        writeln!(f)?;
        for t in &floors {
            write!(f, "{:>8}", t.to_string())?;
            for p in &floors {
                write!(f, " {:>6}", self.count(*t, *p))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl ClassificationReport {
    /// One-line summary, handy for logs:
    /// `micro-F 0.943 macro-F 0.951 acc 0.943 (n=123)`.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let n: usize = self.per_floor.iter().map(|m| m.tp + m.fn_).sum();
        format!(
            "micro-F {:.3} macro-F {:.3} acc {:.3} (n={n})",
            self.micro_f, self.macro_f, self.accuracy
        )
    }
}

/// The micro/macro summary the paper reports in every figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// Micro-averaged precision.
    pub micro_p: f64,
    /// Micro-averaged recall.
    pub micro_r: f64,
    /// Micro-averaged F-score.
    pub micro_f: f64,
    /// Macro-averaged precision.
    pub macro_p: f64,
    /// Macro-averaged recall.
    pub macro_r: f64,
    /// Macro-averaged F-score.
    pub macro_f: f64,
    /// Plain accuracy (= micro recall when every sample is predicted).
    pub accuracy: f64,
    /// Per-floor breakdown, ascending by floor.
    pub per_floor: Vec<FloorMetrics>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let t = [FloorId(0), FloorId(1), FloorId(2)];
        let cm = ConfusionMatrix::from_pairs(&t, &t);
        let r = cm.report();
        assert_eq!(r.micro_f, 1.0);
        assert_eq!(r.macro_f, 1.0);
        assert_eq!(r.accuracy, 1.0);
    }

    #[test]
    fn all_wrong_scores_zero() {
        let t = [FloorId(0), FloorId(1)];
        let p = [FloorId(1), FloorId(0)];
        let r = ConfusionMatrix::from_pairs(&t, &p).report();
        assert_eq!(r.micro_f, 0.0);
        assert_eq!(r.macro_f, 0.0);
    }

    #[test]
    fn micro_equals_accuracy_in_single_label_classification() {
        // When every sample gets exactly one prediction, ΣFP = ΣFN so
        // micro-P = micro-R = micro-F = accuracy.
        let t = [FloorId(0), FloorId(0), FloorId(1), FloorId(2), FloorId(2)];
        let p = [FloorId(0), FloorId(1), FloorId(1), FloorId(2), FloorId(0)];
        let r = ConfusionMatrix::from_pairs(&t, &p).report();
        assert!((r.micro_p - r.micro_r).abs() < 1e-12);
        assert!((r.micro_f - r.accuracy).abs() < 1e-12);
        assert!((r.micro_f - 0.6).abs() < 1e-12);
    }

    #[test]
    fn macro_punishes_minority_class_errors_harder() {
        // 9 correct on floor 0, 1 sample on floor 1 always wrong.
        let mut cm = ConfusionMatrix::new();
        for _ in 0..9 {
            cm.observe(FloorId(0), FloorId(0));
        }
        cm.observe(FloorId(1), FloorId(0));
        let r = cm.report();
        assert!(
            r.micro_f > r.macro_f,
            "micro {} vs macro {}",
            r.micro_f,
            r.macro_f
        );
        assert!((r.micro_f - 0.9).abs() < 1e-12);
        // floor 1: P=R=F=0; floor 0: P=0.9, R=1.0
        assert!((r.macro_p - 0.45).abs() < 1e-12);
        assert!((r.macro_r - 0.5).abs() < 1e-12);
    }

    #[test]
    fn per_floor_counts() {
        let t = [FloorId(0), FloorId(0), FloorId(1)];
        let p = [FloorId(0), FloorId(1), FloorId(1)];
        let cm = ConfusionMatrix::from_pairs(&t, &p);
        let r = cm.report();
        let f0 = &r.per_floor[0];
        assert_eq!((f0.tp, f0.fp, f0.fn_), (1, 0, 1));
        let f1 = &r.per_floor[1];
        assert_eq!((f1.tp, f1.fp, f1.fn_), (1, 1, 0));
    }

    #[test]
    fn empty_matrix_reports_zeros() {
        let r = ConfusionMatrix::new().report();
        assert_eq!(r.micro_f, 0.0);
        assert_eq!(r.macro_f, 0.0);
        assert!(r.per_floor.is_empty());
    }

    #[test]
    fn floors_union_of_truth_and_prediction() {
        let mut cm = ConfusionMatrix::new();
        cm.observe(FloorId(0), FloorId(7));
        assert_eq!(cm.floors(), vec![FloorId(0), FloorId(7)]);
    }

    #[test]
    fn display_renders_counts() {
        let t = [FloorId(0), FloorId(0), FloorId(1)];
        let p = [FloorId(0), FloorId(1), FloorId(1)];
        let cm = ConfusionMatrix::from_pairs(&t, &p);
        let s = cm.to_string();
        assert!(s.contains("GF"), "{s}");
        assert!(s.contains("1F"), "{s}");
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn summary_line_counts_samples() {
        let t = [FloorId(0), FloorId(1), FloorId(1)];
        let r = ConfusionMatrix::from_pairs(&t, &t).report();
        assert!(r.summary_line().contains("(n=3)"), "{}", r.summary_line());
        assert!(r.summary_line().starts_with("micro-F 1.000"));
    }

    #[test]
    fn f_scores_bounded() {
        let t = [FloorId(0), FloorId(1), FloorId(1), FloorId(2)];
        let p = [FloorId(1), FloorId(1), FloorId(2), FloorId(2)];
        let r = ConfusionMatrix::from_pairs(&t, &p).report();
        for v in [
            r.micro_p, r.micro_r, r.micro_f, r.macro_p, r.macro_r, r.macro_f,
        ] {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
