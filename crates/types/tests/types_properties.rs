//! Property-based tests for the core types.

use grafics_types::{Dataset, FloorId, MacAddr, Reading, Rssi, Sample, SignalRecord};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<u64>().prop_map(MacAddr::from_u64)
}

fn arb_record() -> impl Strategy<Value = SignalRecord> {
    prop::collection::vec((any::<u64>(), -120.0f64..=20.0), 1..20).prop_map(|pairs| {
        SignalRecord::new(
            pairs
                .into_iter()
                .map(|(m, r)| Reading::new(MacAddr::from_u64(m), Rssi::new(r).unwrap()))
                .collect(),
        )
        .expect("non-empty")
    })
}

proptest! {
    /// MAC display/parse round-trips for any 48-bit value.
    #[test]
    fn mac_display_parse_roundtrip(mac in arb_mac()) {
        let s = mac.to_string();
        prop_assert_eq!(s.parse::<MacAddr>().unwrap(), mac);
    }

    /// Octet conversion round-trips.
    #[test]
    fn mac_octets_roundtrip(mac in arb_mac()) {
        prop_assert_eq!(MacAddr::from_octets(mac.octets()), mac);
    }

    /// Records are sorted, deduplicated, and never empty.
    #[test]
    fn record_invariants(rec in arb_record()) {
        let readings = rec.readings();
        prop_assert!(!readings.is_empty());
        for w in readings.windows(2) {
            prop_assert!(w[0].mac < w[1].mac, "sorted strictly ascending (deduped)");
        }
    }

    /// Overlap ratio is symmetric, in [0, 1], and 1 against itself.
    #[test]
    fn overlap_ratio_properties(a in arb_record(), b in arb_record()) {
        let ab = a.overlap_ratio(&b);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert_eq!(ab, b.overlap_ratio(&a));
        prop_assert_eq!(a.overlap_ratio(&a), 1.0);
    }

    /// Label budgeting: at most `k` labels per floor survive, ground truth
    /// is untouched, and the record contents are preserved.
    #[test]
    fn label_budget_invariants(
        floors in 1i16..5,
        per_floor in 1usize..12,
        k in 0usize..6,
        seed in 0u64..1000,
    ) {
        let mut samples = Vec::new();
        for f in 0..floors {
            for i in 0..per_floor {
                let rec = SignalRecord::new(vec![Reading::new(
                    MacAddr::from_u64((f as u64) * 100 + i as u64),
                    Rssi::new(-60.0).unwrap(),
                )]).unwrap();
                samples.push(Sample::labeled(rec, FloorId(f)));
            }
        }
        let ds = Dataset::from_samples(samples);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let budgeted = ds.with_label_budget(k, &mut rng);
        prop_assert_eq!(budgeted.len(), ds.len());
        let mut per_floor_labels = std::collections::BTreeMap::new();
        for s in budgeted.samples() {
            if s.is_labeled() {
                *per_floor_labels.entry(s.ground_truth).or_insert(0usize) += 1;
                prop_assert_eq!(s.floor.unwrap(), s.ground_truth);
            }
        }
        for &c in per_floor_labels.values() {
            prop_assert!(c <= k.max(per_floor));
            prop_assert!(c == k.min(per_floor));
        }
    }

    /// Splits partition the dataset: sizes add up, and the union of
    /// records (as multisets) equals the original.
    #[test]
    fn split_partitions(
        n in 4usize..40,
        ratio in 0.2f64..0.8,
        seed in 0u64..1000,
    ) {
        let samples: Vec<Sample> = (0..n)
            .map(|i| {
                let rec = SignalRecord::new(vec![Reading::new(
                    MacAddr::from_u64(i as u64),
                    Rssi::new(-60.0).unwrap(),
                )]).unwrap();
                Sample::labeled(rec, FloorId(0))
            })
            .collect();
        let ds = Dataset::from_samples(samples);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let split = ds.split(ratio, &mut rng).unwrap();
        prop_assert_eq!(split.train.len() + split.test.len(), n);
        prop_assert!(!split.train.is_empty());
        prop_assert!(!split.test.is_empty());
        let mut all_macs: Vec<u64> = split
            .train
            .samples()
            .iter()
            .chain(split.test.samples())
            .map(|s| s.record.readings()[0].mac.as_u64())
            .collect();
        all_macs.sort_unstable();
        let expected: Vec<u64> = (0..n as u64).collect();
        prop_assert_eq!(all_macs, expected);
    }

    /// Rssi serde round-trips through JSON for any valid value.
    #[test]
    fn rssi_serde_roundtrip(v in -120.0f64..=20.0) {
        let r = Rssi::new(v).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: Rssi = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, r);
    }
}
