//! [`RowMatrix`]: the workspace's contiguous row-major matrix.
//!
//! One flat allocation, rows at stride `cols` — every row access is a
//! slice into the same buffer, so sweeping rows streams memory linearly
//! (hardware prefetch, cache-line reuse) instead of pointer-chasing one
//! heap allocation per row the way `Vec<Vec<T>>` does. `RowMatrix<f64>`
//! carries cluster points and centroids and the dissimilarity-matrix
//! input; `RowMatrix<f32>` is the `nn` substrate's matrix type (the
//! forward/backward ops live in the `f32` impl below, on the shared
//! [`crate::kernels`] layer).

use crate::kernels::{axpy_f32, dot_f32};
use rand::Rng;
use serde::{map_get, DeError, Deserialize, Serialize, Value};

/// A dense row-major matrix over one contiguous buffer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RowMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy> RowMatrix<T> {
    /// An empty matrix whose column count is fixed up front; rows are
    /// appended with [`RowMatrix::push_row`]. The natural way to build
    /// point sets incrementally without intermediate per-row `Vec`s.
    #[must_use]
    pub fn with_cols(cols: usize) -> Self {
        RowMatrix {
            rows: 0,
            cols,
            data: Vec::new(),
        }
    }

    /// [`RowMatrix::with_cols`] with capacity for `rows` rows.
    #[must_use]
    pub fn with_capacity(rows: usize, cols: usize) -> Self {
        RowMatrix {
            rows: 0,
            cols,
            data: Vec::with_capacity(rows * cols),
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_flat(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols);
        RowMatrix { rows, cols, data }
    }

    /// Builds from row vectors. An empty slice yields the `0 × 0` matrix.
    ///
    /// # Panics
    ///
    /// Panics on ragged input.
    #[must_use]
    pub fn from_rows(rows: &[Vec<T>]) -> Self {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        RowMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Fallible [`RowMatrix::from_rows`]: ragged input returns
    /// `Err((expected, found))` instead of panicking — the shape
    /// validation callers converting legacy nested-`Vec` inputs need.
    ///
    /// # Errors
    ///
    /// `Err((expected, found))` on the first row whose length differs
    /// from the first row's.
    pub fn try_from_rows(rows: &[Vec<T>]) -> Result<Self, (usize, usize)> {
        let cols = rows.first().map_or(0, Vec::len);
        for r in rows {
            if r.len() != cols {
                return Err((cols, r.len()));
            }
        }
        Ok(Self::from_rows(rows))
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn push_row(&mut self, row: &[T]) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Element accessor.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> T {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterates the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> {
        (0..self.rows).map(move |r| self.row(r))
    }

    /// Flat data.
    #[must_use]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Flat mutable data.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Returns a sub-matrix of the given row range (copies).
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.rows()`.
    #[must_use]
    pub fn slice_rows(&self, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= self.rows);
        RowMatrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }
}

impl<T: Copy + Default> RowMatrix<T> {
    /// All-default (zero, for the numeric instantiations) matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RowMatrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl RowMatrix<f64> {
    /// Widens an `f32` matrix to `f64` (one pass over the flat buffer;
    /// `f32 → f64` is exact). How baseline embeddings reach the cluster
    /// layer without a nested-`Vec` detour.
    #[must_use]
    pub fn widen(m: &RowMatrix<f32>) -> Self {
        RowMatrix {
            rows: m.rows,
            cols: m.cols,
            data: m.data.iter().map(|&x| f64::from(x)).collect(),
        }
    }

    /// Appends one row widened from `f32` coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn push_row_widen(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.data.extend(row.iter().map(|&x| f64::from(x)));
        self.rows += 1;
    }

    /// `true` when every entry is finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// The `nn` substrate's forward/backward operations, on the shared
/// kernel layer ([`crate::kernels`], sequential-exact contract — the
/// loops are bit-for-bit the historical per-coordinate versions).
impl RowMatrix<f32> {
    /// He/Xavier-style uniform init in `±sqrt(6/(fan_in+fan_out))`.
    #[must_use]
    pub fn glorot<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        RowMatrix {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|_| rng.gen_range(-bound..=bound))
                .collect(),
        }
    }

    /// `self × other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "matmul inner dims");
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                axpy_f32(out.row_mut(i), a, other.row(k));
            }
        }
        out
    }

    /// `selfᵀ × other` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics on outer-dimension mismatch.
    #[must_use]
    pub fn t_matmul(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "t_matmul outer dims");
        let mut out = Self::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.get(r, i);
                if a == 0.0 {
                    continue;
                }
                axpy_f32(out.row_mut(i), a, other.row(r));
            }
        }
        out
    }

    /// `self × otherᵀ` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul_t(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.cols, "matmul_t inner dims");
        let mut out = Self::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = self.row(i);
            let out_row = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (j, slot) in out_row.iter_mut().enumerate() {
                *slot = dot_f32(arow, other.row(j));
            }
        }
        out
    }

    /// Adds `bias` (length = cols) to every row.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    #[must_use]
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            axpy_f32(&mut sums, 1.0, self.row(r));
        }
        sums
    }

    /// `true` when every entry is finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

// Manual serde impls (the vendored derive does not handle generics).
// The wire shape `{rows, cols, data}` matches what the historical
// derived `nn::Matrix` emitted, so persisted models keep loading.
impl<T: Serialize> Serialize for RowMatrix<T> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (String::from("rows"), self.rows.to_value()),
            (String::from("cols"), self.cols.to_value()),
            (String::from("data"), self.data.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for RowMatrix<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let map = value
            .as_map()
            .ok_or_else(|| DeError::custom(&"RowMatrix expects an object"))?;
        let rows: usize = Deserialize::from_value(map_get(map, "rows"))?;
        let cols: usize = Deserialize::from_value(map_get(map, "cols"))?;
        let data: Vec<T> = Deserialize::from_value(map_get(map, "data"))?;
        if data.len() != rows * cols {
            return Err(DeError::custom(&format!(
                "RowMatrix shape mismatch: {rows}x{cols} with {} entries",
                data.len()
            )));
        }
        Ok(RowMatrix { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_access() {
        let m = RowMatrix::from_rows(&[vec![1.0f64, 2.0], vec![3.0, 4.0]]);
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        let mut grown = RowMatrix::with_cols(2);
        grown.push_row(&[5.0f64, 6.0]);
        grown.push_row_widen(&[7.0f32, 8.0]);
        assert_eq!(grown.rows(), 2);
        assert_eq!(grown.row(1), &[7.0, 8.0]);
        assert!(RowMatrix::<f64>::from_rows(&[]).is_empty());
        assert_eq!(
            RowMatrix::try_from_rows(&[vec![0.0f64; 2], vec![0.0]]),
            Err((2, 1))
        );
    }

    #[test]
    fn widen_is_exact() {
        let f = RowMatrix::from_rows(&[vec![1.5f32, -0.25], vec![3.0, 0.1]]);
        let d = RowMatrix::widen(&f);
        for r in 0..2 {
            for c in 0..2 {
                assert_eq!(d.get(r, c), f64::from(f.get(r, c)));
            }
        }
    }

    #[test]
    fn matmul_known_values() {
        let a = RowMatrix::from_rows(&[vec![1.0f32, 2.0], vec![3.0, 4.0]]);
        let b = RowMatrix::from_rows(&[vec![5.0f32, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transposed_products_agree_with_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let a = RowMatrix::glorot(4, 3, &mut rng);
        let b = RowMatrix::glorot(4, 5, &mut rng);
        let t = a.t_matmul(&b); // aᵀ b : 3×5
        for i in 0..3 {
            for j in 0..5 {
                let naive: f32 = (0..4).map(|k| a.get(k, i) * b.get(k, j)).sum();
                assert!((t.get(i, j) - naive).abs() < 1e-5);
            }
        }
        let c = RowMatrix::glorot(5, 3, &mut rng);
        let m = a.matmul_t(&c); // a cᵀ : 4×5
        for i in 0..4 {
            for j in 0..5 {
                let naive: f32 = (0..3).map(|k| a.get(i, k) * c.get(j, k)).sum();
                assert!((m.get(i, j) - naive).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn serde_roundtrip_and_shape_validation() {
        let m = RowMatrix::from_rows(&[vec![1.0f64, 2.0], vec![3.0, 4.0]]);
        let json = serde_json::to_string(&m).unwrap();
        let back: RowMatrix<f64> = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
        let bad = r#"{"rows":3,"cols":2,"data":[1.0,2.0]}"#;
        assert!(serde_json::from_str::<RowMatrix<f64>>(bad).is_err());
    }
}
