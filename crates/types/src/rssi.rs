//! Received signal strength values.

use crate::TypesError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A received-signal-strength (RSS) value in dBm.
///
/// WiFi RSS values observed by commodity hardware fall in roughly
/// `[-100, -20]` dBm. We accept the wider range `[-120, 20]` to accommodate
/// sentinel conventions (e.g. the paper fills missing matrix entries with
/// −120 dBm) and unusually strong readings, and reject NaN/infinities so
/// downstream arithmetic (edge weights, gradients) is always finite.
///
/// # Examples
///
/// ```
/// use grafics_types::Rssi;
///
/// let rssi = Rssi::new(-66.0).unwrap();
/// assert_eq!(rssi.dbm(), -66.0);
/// assert!(Rssi::new(f64::NAN).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Rssi(f64);

impl Rssi {
    /// Weakest representable reading, −120 dBm (also the paper's
    /// missing-value sentinel for matrix baselines).
    pub const FLOOR: Rssi = Rssi(-120.0);

    /// Strongest representable reading, +20 dBm.
    pub const CEIL: Rssi = Rssi(20.0);

    /// Creates an RSSI, validating that the value is finite and within
    /// `[-120, 20]` dBm.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::InvalidRssi`] for NaN, infinities, or
    /// out-of-range values.
    pub fn new(dbm: f64) -> Result<Self, TypesError> {
        if dbm.is_finite() && (Self::FLOOR.0..=Self::CEIL.0).contains(&dbm) {
            Ok(Rssi(dbm))
        } else {
            Err(TypesError::InvalidRssi { value: dbm })
        }
    }

    /// Creates an RSSI, clamping out-of-range finite values into
    /// `[-120, 20]` dBm.
    ///
    /// # Panics
    ///
    /// Panics if `dbm` is NaN.
    #[must_use]
    pub fn saturating(dbm: f64) -> Self {
        assert!(!dbm.is_nan(), "RSSI must not be NaN");
        Rssi(dbm.clamp(Self::FLOOR.0, Self::CEIL.0))
    }

    /// Returns the value in dBm.
    #[must_use]
    pub const fn dbm(self) -> f64 {
        self.0
    }

    /// Returns the value converted from dBm to milliwatts,
    /// `10^(dBm / 10)`. Used by the paper's alternative weight function
    /// `g(RSS)` (Fig. 16).
    #[must_use]
    pub fn milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }
}

impl fmt::Display for Rssi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} dBm", self.0)
    }
}

impl TryFrom<f64> for Rssi {
    type Error = TypesError;
    fn try_from(v: f64) -> Result<Self, Self::Error> {
        Rssi::new(v)
    }
}

impl From<Rssi> for f64 {
    fn from(r: Rssi) -> f64 {
        r.0
    }
}

impl Eq for Rssi {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Rssi {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Valid RSSI values are always finite, so total order exists.
        self.0
            .partial_cmp(&other.0)
            .expect("RSSI is finite by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_typical_wifi_values() {
        for v in [-100.0, -66.0, -30.0, 0.0, -120.0, 20.0] {
            assert!(Rssi::new(v).is_ok(), "{v} should be valid");
        }
    }

    #[test]
    fn rejects_invalid() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -121.0, 20.5] {
            assert!(Rssi::new(v).is_err(), "{v} should be invalid");
        }
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Rssi::saturating(-500.0), Rssi::FLOOR);
        assert_eq!(Rssi::saturating(99.0), Rssi::CEIL);
        assert_eq!(Rssi::saturating(-60.0).dbm(), -60.0);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn saturating_panics_on_nan() {
        let _ = Rssi::saturating(f64::NAN);
    }

    #[test]
    fn milliwatt_conversion() {
        let r = Rssi::new(-30.0).unwrap();
        assert!((r.milliwatts() - 1e-3).abs() < 1e-12);
        let zero = Rssi::new(0.0).unwrap();
        assert!((zero.milliwatts() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Rssi::new(-50.0).unwrap(),
            Rssi::new(-90.0).unwrap(),
            Rssi::new(-70.0).unwrap(),
        ];
        v.sort();
        assert_eq!(v[0].dbm(), -90.0);
        assert_eq!(v[2].dbm(), -50.0);
    }

    #[test]
    fn serde_rejects_out_of_range() {
        assert!(serde_json::from_str::<Rssi>("-121.0").is_err());
        assert_eq!(serde_json::from_str::<Rssi>("-66.0").unwrap().dbm(), -66.0);
    }
}
