//! Error type for the `grafics-types` crate.

use std::fmt;

/// Errors produced while constructing or parsing the core types.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TypesError {
    /// A MAC address string could not be parsed.
    InvalidMac {
        /// The offending input string.
        input: String,
    },
    /// An RSSI value was outside the physically plausible range or not finite.
    InvalidRssi {
        /// The offending value in dBm.
        value: f64,
    },
    /// A signal record was constructed with no readings.
    EmptyRecord,
    /// A dataset split ratio was outside `(0, 1)`.
    InvalidSplitRatio {
        /// The offending ratio.
        ratio: f64,
    },
}

impl fmt::Display for TypesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypesError::InvalidMac { input } => {
                write!(f, "invalid MAC address: {input:?}")
            }
            TypesError::InvalidRssi { value } => {
                write!(
                    f,
                    "invalid RSSI value: {value} dBm (must be finite and within [-120, 20])"
                )
            }
            TypesError::EmptyRecord => write!(f, "signal record must contain at least one reading"),
            TypesError::InvalidSplitRatio { ratio } => {
                write!(f, "split ratio {ratio} must lie strictly between 0 and 1")
            }
        }
    }
}

impl std::error::Error for TypesError {}
