//! Owned collections of samples with the split / label-budget helpers used
//! by every experiment in the paper (§VI-A).

use crate::{FloorId, MacAddr, Sample, TypesError};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A train/test partition of a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Split {
    /// Samples used for offline training (labels may be present or hidden).
    pub train: Dataset,
    /// Samples used for online-inference evaluation (labels hidden).
    pub test: Dataset,
}

/// Aggregate statistics of a dataset (the quantities plotted in the paper's
/// Figs. 1 and 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of samples.
    pub records: usize,
    /// Number of distinct MACs across all samples.
    pub macs: usize,
    /// Number of distinct floors (by ground truth).
    pub floors: usize,
    /// Number of labelled samples.
    pub labeled: usize,
    /// Mean number of MACs per record.
    pub mean_macs_per_record: f64,
}

/// An owned collection of [`Sample`]s from one building.
///
/// # Examples
///
/// ```
/// use grafics_types::{Dataset, Sample, SignalRecord, Reading, MacAddr, Rssi, FloorId};
///
/// let rec = SignalRecord::new(vec![Reading::new(
///     MacAddr::from_u64(1), Rssi::new(-60.0).unwrap(),
/// )]).unwrap();
/// let ds = Dataset::from_samples(vec![Sample::labeled(rec, FloorId(0))]);
/// assert_eq!(ds.len(), 1);
/// assert_eq!(ds.stats().floors, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// Creates a dataset from samples.
    #[must_use]
    pub fn from_samples(samples: Vec<Sample>) -> Self {
        Dataset { samples }
    }

    /// The samples, in insertion order.
    #[must_use]
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if there are no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The set of distinct MACs observed anywhere in the dataset, ascending.
    #[must_use]
    pub fn mac_vocabulary(&self) -> Vec<MacAddr> {
        let set: BTreeSet<MacAddr> = self.samples.iter().flat_map(|s| s.record.macs()).collect();
        set.into_iter().collect()
    }

    /// The distinct ground-truth floors, ascending.
    #[must_use]
    pub fn floors(&self) -> Vec<FloorId> {
        let set: BTreeSet<FloorId> = self.samples.iter().map(|s| s.ground_truth).collect();
        set.into_iter().collect()
    }

    /// Number of samples per ground-truth floor.
    #[must_use]
    pub fn per_floor_counts(&self) -> BTreeMap<FloorId, usize> {
        let mut map = BTreeMap::new();
        for s in &self.samples {
            *map.entry(s.ground_truth).or_insert(0) += 1;
        }
        map
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> DatasetStats {
        let total_macs: usize = self.samples.iter().map(|s| s.record.len()).sum();
        DatasetStats {
            records: self.len(),
            macs: self.mac_vocabulary().len(),
            floors: self.floors().len(),
            labeled: self.samples.iter().filter(|s| s.is_labeled()).count(),
            mean_macs_per_record: if self.is_empty() {
                0.0
            } else {
                total_macs as f64 / self.len() as f64
            },
        }
    }

    /// Randomly partitions into `train_ratio` training samples and the rest
    /// for testing (the paper uses 70/30).
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::InvalidSplitRatio`] unless `0 < train_ratio < 1`.
    pub fn split<R: Rng>(&self, train_ratio: f64, rng: &mut R) -> Result<Split, TypesError> {
        if !(train_ratio > 0.0 && train_ratio < 1.0) {
            return Err(TypesError::InvalidSplitRatio { ratio: train_ratio });
        }
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_train = ((self.len() as f64) * train_ratio).round() as usize;
        let n_train = n_train.clamp(1, self.len().saturating_sub(1).max(1));
        let train = idx[..n_train]
            .iter()
            .map(|&i| self.samples[i].clone())
            .collect();
        let test = idx[n_train..]
            .iter()
            .map(|&i| self.samples[i].clone())
            .collect();
        Ok(Split {
            train: Dataset::from_samples(train),
            test: Dataset::from_samples(test),
        })
    }

    /// Returns a copy in which exactly `labels_per_floor` randomly chosen
    /// samples on each floor keep their label and every other sample's label
    /// is hidden (set to `None`). This is the paper's label-budget protocol:
    /// "only four floor-labelled samples (randomly chosen) on each floor".
    ///
    /// If a floor has fewer than `labels_per_floor` samples, all of that
    /// floor's samples stay labelled.
    #[must_use]
    pub fn with_label_budget<R: Rng>(&self, labels_per_floor: usize, rng: &mut R) -> Dataset {
        let mut by_floor: BTreeMap<FloorId, Vec<usize>> = BTreeMap::new();
        for (i, s) in self.samples.iter().enumerate() {
            by_floor.entry(s.ground_truth).or_default().push(i);
        }
        let mut keep: BTreeSet<usize> = BTreeSet::new();
        for idxs in by_floor.values() {
            let mut idxs = idxs.clone();
            idxs.shuffle(rng);
            keep.extend(idxs.into_iter().take(labels_per_floor));
        }
        let samples = self
            .samples
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if keep.contains(&i) {
                    Sample::labeled(s.record.clone(), s.ground_truth)
                } else {
                    Sample::unlabeled(s.record.clone(), s.ground_truth)
                }
            })
            .collect();
        Dataset::from_samples(samples)
    }

    /// Returns a copy with every label hidden.
    #[must_use]
    pub fn unlabeled(&self) -> Dataset {
        Dataset::from_samples(
            self.samples
                .iter()
                .map(|s| Sample::unlabeled(s.record.clone(), s.ground_truth))
                .collect(),
        )
    }

    /// Returns a copy with every reading whose MAC appears in fewer than
    /// `min_support` records removed; samples left with no readings are
    /// dropped entirely.
    ///
    /// This is the standard fingerprinting pre-processing step against
    /// *ephemeral* MACs (phone hotspots, passing devices): a MAC observed
    /// by a single record carries no relational information and only
    /// injects noise into any model.
    #[must_use]
    pub fn filter_rare_macs(&self, min_support: usize) -> Dataset {
        let mut support: BTreeMap<MacAddr, usize> = BTreeMap::new();
        for s in &self.samples {
            for m in s.record.macs() {
                *support.entry(m).or_insert(0) += 1;
            }
        }
        self.samples
            .iter()
            .filter_map(|s| {
                let record = s.record.filtered(|m| support[&m] >= min_support)?;
                Some(Sample {
                    record,
                    ..s.clone()
                })
            })
            .collect()
    }

    /// Returns a random subsample of `n` samples (all if `n >= len`).
    #[must_use]
    pub fn subsample<R: Rng>(&self, n: usize, rng: &mut R) -> Dataset {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        idx.truncate(n);
        Dataset::from_samples(idx.into_iter().map(|i| self.samples[i].clone()).collect())
    }
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        Dataset {
            samples: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Dataset {
    type Item = Sample;
    type IntoIter = std::vec::IntoIter<Sample>;
    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Reading, Rssi, SignalRecord};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rec(macs: &[u64]) -> SignalRecord {
        SignalRecord::new(
            macs.iter()
                .map(|&m| Reading::new(MacAddr::from_u64(m), Rssi::new(-60.0).unwrap()))
                .collect(),
        )
        .unwrap()
    }

    fn toy(n_per_floor: usize, floors: i16) -> Dataset {
        let mut ds = Dataset::default();
        for f in 0..floors {
            for i in 0..n_per_floor {
                ds.push(Sample::labeled(
                    rec(&[f as u64 * 100 + i as u64, 7]),
                    FloorId(f),
                ));
            }
        }
        ds
    }

    #[test]
    fn vocabulary_and_floors() {
        let ds = toy(3, 2);
        assert_eq!(ds.floors(), vec![FloorId(0), FloorId(1)]);
        // 3 unique per floor * 2 floors + shared mac 7
        assert_eq!(ds.mac_vocabulary().len(), 7);
    }

    #[test]
    fn stats_counts() {
        let ds = toy(4, 3);
        let st = ds.stats();
        assert_eq!(st.records, 12);
        assert_eq!(st.floors, 3);
        assert_eq!(st.labeled, 12);
        assert!((st.mean_macs_per_record - 2.0).abs() < 1e-12);
    }

    #[test]
    fn split_sizes_and_disjoint() {
        let ds = toy(10, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let split = ds.split(0.7, &mut rng).unwrap();
        assert_eq!(split.train.len(), 21);
        assert_eq!(split.test.len(), 9);
    }

    #[test]
    fn split_rejects_bad_ratio() {
        let ds = toy(2, 2);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(ds.split(0.0, &mut rng).is_err());
        assert!(ds.split(1.0, &mut rng).is_err());
        assert!(ds.split(-0.5, &mut rng).is_err());
    }

    #[test]
    fn label_budget_exact() {
        let ds = toy(50, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let budgeted = ds.with_label_budget(4, &mut rng);
        let labeled = budgeted.samples().iter().filter(|s| s.is_labeled()).count();
        assert_eq!(labeled, 16);
        // Labels are evenly spread: exactly 4 per floor.
        for (_, c) in budgeted
            .samples()
            .iter()
            .filter(|s| s.is_labeled())
            .map(|s| (s.ground_truth, 1))
            .fold(BTreeMap::<FloorId, usize>::new(), |mut m, (f, c)| {
                *m.entry(f).or_default() += c;
                m
            })
        {
            assert_eq!(c, 4);
        }
    }

    #[test]
    fn label_budget_small_floor_keeps_all() {
        let ds = toy(2, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let budgeted = ds.with_label_budget(10, &mut rng);
        assert_eq!(budgeted.stats().labeled, 2);
    }

    #[test]
    fn ground_truth_survives_label_hiding() {
        let ds = toy(5, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let b = ds.with_label_budget(1, &mut rng);
        for s in b.samples() {
            assert!(ds
                .samples()
                .iter()
                .any(|orig| orig.record == s.record && orig.ground_truth == s.ground_truth));
        }
    }

    #[test]
    fn unlabeled_hides_everything() {
        let ds = toy(3, 2).unlabeled();
        assert_eq!(ds.stats().labeled, 0);
    }

    #[test]
    fn filter_rare_macs_drops_singletons() {
        let ds = Dataset::from_samples(vec![
            Sample::labeled(rec(&[1, 2]), FloorId(0)),
            Sample::labeled(rec(&[1, 3]), FloorId(0)),
            Sample::labeled(rec(&[99]), FloorId(1)), // singleton-only record
        ]);
        let filtered = ds.filter_rare_macs(2);
        // MAC 1 appears twice and survives; 2, 3, 99 are singletons.
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered.mac_vocabulary(), vec![MacAddr::from_u64(1)]);
    }

    #[test]
    fn filter_rare_macs_support_one_is_identity() {
        let ds = toy(4, 2);
        assert_eq!(ds.filter_rare_macs(1), ds);
        assert_eq!(ds.filter_rare_macs(0), ds);
    }

    #[test]
    fn subsample_bounds() {
        let ds = toy(5, 2);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(ds.subsample(3, &mut rng).len(), 3);
        assert_eq!(ds.subsample(100, &mut rng).len(), 10);
    }
}
