//! The workspace's single SIMD-friendly math kernel layer.
//!
//! Every dense-math hot loop — E-LINE SGD over `f32` rows (offline
//! Hogwild training and online serving), the O(n²·d) pairwise
//! dissimilarity matrix over `f64` points, nearest-centroid matching,
//! and the `nn` forward/backward passes — funnels through this module,
//! so there is exactly one copy of each kernel to keep fast and correct.
//!
//! Three numeric contracts coexist here; pick the right one:
//!
//! 1. **Sequential-exact** ([`dot_f32`], [`axpy_f32`], [`sqdist_f64`],
//!    [`euclidean_f64`]): one accumulator, ascending coordinate order —
//!    bit-for-bit the historical scalar loops. The serial E-LINE trainer,
//!    the dissimilarity matrix, and cluster matching are pinned to these
//!    (fixed-seed tests depend on their exact rounding).
//! 2. **Fixed-lane FMA** ([`dot_fixed_f32`], [`axpy_fixed_f32`]):
//!    monomorphised over the compile-time dimension (4/8/16 cover the
//!    paper's defaults); four independent accumulators + `mul_add` let
//!    the backend emit fused multiply-adds with no bounds checks.
//! 3. **Lane-blocked FMA** ([`dot_lanes_f32`], [`axpy_lanes_f32`]):
//!    the runtime-length twin of contract 2, **bit-identical to the
//!    fixed kernels at every length** (same 4-accumulator chunking, same
//!    tail, same reduction order). This is the `d > 16` path the fixed
//!    monomorphisations cannot cover — stable Rust, written to
//!    autovectorize, no nightly `std::simd` needed.
//!
//! [`sqdist4_f64`] is the multi-pair companion of [`sqdist_f64`]: it
//! computes four *pairs* at once with four independent sequential
//! chains — per-pair rounding is untouched (each pair's accumulation is
//! still strictly sequential in the coordinate), but the independent
//! chains break the add-latency dependency that bounds the one-pair
//! loop. The cache-blocked dissimilarity build in `grafics-cluster`
//! applies this same pairs-as-lanes contract in widened form (up to 64
//! accumulators over a transposed tile); the 4-pair kernel is its
//! minimal, testable statement, pinned bit-identical to four
//! [`sqdist_f64`] calls.

/// Sequential dot product — accumulation order matches the historical
/// per-coordinate loop exactly, keeping the serial E-LINE trainer (and
/// everything else pinned to contract 1) bit-for-bit stable.
#[inline(always)]
#[must_use]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for d in 0..a.len() {
        acc += a[d] * b[d];
    }
    acc
}

/// `acc[d] += scale * v[d]` in ascending coordinate order — the
/// sequential-exact update kernel (contract 1).
#[inline(always)]
pub fn axpy_f32(acc: &mut [f32], scale: f32, v: &[f32]) {
    debug_assert_eq!(acc.len(), v.len());
    for d in 0..acc.len() {
        acc[d] += scale * v[d];
    }
}

/// Four-accumulator dot product over compile-time-sized rows (contract
/// 2). `mul_add` lets the backend emit fused multiply-adds; used by the
/// Hogwild trainer and the online serving path, neither of which
/// promises bit-stability against the sequential [`dot_f32`].
#[inline(always)]
#[must_use]
pub fn dot_fixed_f32<const DIM: usize>(a: &[f32; DIM], b: &[f32; DIM]) -> f32 {
    let mut acc = [0.0f32; 4];
    let mut d = 0;
    while d + 4 <= DIM {
        acc[0] = a[d].mul_add(b[d], acc[0]);
        acc[1] = a[d + 1].mul_add(b[d + 1], acc[1]);
        acc[2] = a[d + 2].mul_add(b[d + 2], acc[2]);
        acc[3] = a[d + 3].mul_add(b[d + 3], acc[3]);
        d += 4;
    }
    let mut dot = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    while d < DIM {
        dot = a[d].mul_add(b[d], dot);
        d += 1;
    }
    dot
}

/// `acc[d] = v[d].mul_add(g, acc[d])` over compile-time-sized rows
/// (contract 2): fully unrolls with fused multiply-adds, no bounds
/// checks.
#[inline(always)]
pub fn axpy_fixed_f32<const DIM: usize>(acc: &mut [f32; DIM], g: f32, v: &[f32; DIM]) {
    for d in 0..DIM {
        acc[d] = v[d].mul_add(g, acc[d]);
    }
}

/// Lane-blocked dot product for runtime lengths (contract 3):
/// bit-identical to [`dot_fixed_f32`] at every length — same four
/// `mul_add` accumulator chains over chunks of 4, same
/// `(acc0+acc2)+(acc1+acc3)` reduction, same sequential `mul_add` tail.
/// This is the `d > 16` fast path that closes the gap the fixed
/// monomorphisations (4/8/16) leave open.
#[inline(always)]
#[must_use]
pub fn dot_lanes_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut acc = [0.0f32; 4];
    let mut d = 0;
    while d + 4 <= n {
        acc[0] = a[d].mul_add(b[d], acc[0]);
        acc[1] = a[d + 1].mul_add(b[d + 1], acc[1]);
        acc[2] = a[d + 2].mul_add(b[d + 2], acc[2]);
        acc[3] = a[d + 3].mul_add(b[d + 3], acc[3]);
        d += 4;
    }
    let mut dot = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    while d < n {
        dot = a[d].mul_add(b[d], dot);
        d += 1;
    }
    dot
}

/// Lane-blocked `acc[d] = v[d].mul_add(g, acc[d])` for runtime lengths
/// (contract 3) — bit-identical to [`axpy_fixed_f32`] at every length
/// (the update is per-coordinate, so there is no reduction order to
/// preserve; the compiler vectorizes the independent FMAs freely).
#[inline(always)]
pub fn axpy_lanes_f32(acc: &mut [f32], g: f32, v: &[f32]) {
    debug_assert_eq!(acc.len(), v.len());
    for d in 0..acc.len() {
        acc[d] = v[d].mul_add(g, acc[d]);
    }
}

/// Sequential squared ℓ2 distance (contract 1): `Σ (a[d]-b[d])²` in
/// ascending coordinate order — exactly the accumulation the historical
/// `euclidean` performed before its `sqrt`, so dissimilarity entries,
/// merge histories, and nearest-centroid winners derived from it are
/// bit-for-bit stable.
#[inline(always)]
#[must_use]
pub fn sqdist_f64(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f64;
    for d in 0..a.len() {
        let diff = a[d] - b[d];
        acc += diff * diff;
    }
    acc
}

/// Sequential squared ℓ2 distance over `f32` rows (contract 1): the
/// single-precision twin of [`sqdist_f64`], accumulated in ascending
/// coordinate order. Used as the reference the lane-blocked
/// [`sqdist_lanes_f32`] is tested against.
#[inline(always)]
#[must_use]
pub fn sqdist_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0f32;
    for d in 0..a.len() {
        let diff = a[d] - b[d];
        acc += diff * diff;
    }
    acc
}

/// Lane-blocked squared ℓ2 distance over `f32` rows (contract 3): four
/// independent `mul_add` accumulator chains over chunks of 4, the
/// `(acc0+acc2)+(acc1+acc3)` reduction, and a sequential FMA tail —
/// the same scheme as [`dot_lanes_f32`], so it autovectorizes on the
/// same backends. This is the single-precision centroid-sweep kernel:
/// half the memory bandwidth of the `f64` sweep, used only to *rank*
/// candidates that are then re-scored with [`sqdist_f64`], so its
/// rounding never reaches a returned distance.
#[inline(always)]
#[must_use]
pub fn sqdist_lanes_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut acc = [0.0f32; 4];
    let mut d = 0;
    while d + 4 <= n {
        let d0 = a[d] - b[d];
        let d1 = a[d + 1] - b[d + 1];
        let d2 = a[d + 2] - b[d + 2];
        let d3 = a[d + 3] - b[d + 3];
        acc[0] = d0.mul_add(d0, acc[0]);
        acc[1] = d1.mul_add(d1, acc[1]);
        acc[2] = d2.mul_add(d2, acc[2]);
        acc[3] = d3.mul_add(d3, acc[3]);
        d += 4;
    }
    let mut sum = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    while d < n {
        let diff = a[d] - b[d];
        sum = diff.mul_add(diff, sum);
        d += 1;
    }
    sum
}

/// Sequential ℓ2 distance: `sqdist_f64(a, b).sqrt()`.
#[inline(always)]
#[must_use]
pub fn euclidean_f64(a: &[f64], b: &[f64]) -> f64 {
    sqdist_f64(a, b).sqrt()
}

/// Four squared ℓ2 distances `‖a − bK‖²` at once. Each pair's
/// accumulation is strictly sequential in the coordinate — bit-identical
/// to four [`sqdist_f64`] calls — but the four chains are independent,
/// so the core overlaps their FP-add latencies instead of stalling on
/// one chain. The minimal statement of the pairs-as-lanes contract the
/// cache-blocked dissimilarity build widens to a full transposed tile.
#[inline(always)]
#[must_use]
pub fn sqdist4_f64(a: &[f64], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) -> [f64; 4] {
    debug_assert!(
        a.len() == b0.len() && a.len() == b1.len() && a.len() == b2.len() && a.len() == b3.len()
    );
    let mut acc = [0.0f64; 4];
    for d in 0..a.len() {
        let x = a[d];
        let d0 = x - b0[d];
        let d1 = x - b1[d];
        let d2 = x - b2[d];
        let d3 = x - b3[d];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f32>, Vec<f32>) {
        let a = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let b = (0..n).map(|i| (i as f32 * 0.91).cos()).collect();
        (a, b)
    }

    #[test]
    fn sequential_kernels_match_naive() {
        let (a, b) = vecs(13);
        let naive: f32 = a.iter().zip(&b).map(|(&x, &y)| x * y).sum();
        assert!((dot_f32(&a, &b) - naive).abs() < 1e-5);
        assert_eq!(dot_f32(&[], &[]), 0.0);

        let mut acc = vec![1.0f32, 2.0, 3.0];
        axpy_f32(&mut acc, 2.0, &[10.0, 20.0, 30.0]);
        assert_eq!(acc, vec![21.0, 42.0, 63.0]);
    }

    /// The lane-blocked runtime kernels must be bit-identical to the
    /// fixed monomorphisations at the dimensions those cover.
    #[test]
    fn lane_blocked_matches_fixed_bitwise() {
        macro_rules! check {
            ($dim:literal) => {{
                let (a, b) = vecs($dim);
                let fa: &[f32; $dim] = a.as_slice().try_into().unwrap();
                let fb: &[f32; $dim] = b.as_slice().try_into().unwrap();
                assert_eq!(
                    dot_lanes_f32(&a, &b).to_bits(),
                    dot_fixed_f32(fa, fb).to_bits(),
                    "dot dim {}",
                    $dim
                );
                let mut acc_l: Vec<f32> = b.clone();
                axpy_lanes_f32(&mut acc_l, 0.625, &a);
                let mut acc_f: [f32; $dim] = *fb;
                axpy_fixed_f32(&mut acc_f, 0.625, fa);
                assert_eq!(&acc_l[..], &acc_f[..], "axpy dim {}", $dim);
            }};
        }
        check!(4);
        check!(8);
        check!(16);
        // Odd and large lengths exercise the tail path.
        for n in [1usize, 3, 5, 17, 32, 33, 64, 100] {
            let (a, b) = vecs(n);
            let naive: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| f64::from(x) * f64::from(y))
                .sum();
            assert!(
                (f64::from(dot_lanes_f32(&a, &b)) - naive).abs() < 1e-4,
                "dim {n}"
            );
        }
    }

    #[test]
    fn sqdist_matches_euclidean_squared() {
        let a = [0.0f64, 3.0, 1.0];
        let b = [4.0f64, 0.0, 1.0];
        assert_eq!(sqdist_f64(&a, &b), 25.0);
        assert_eq!(euclidean_f64(&a, &b), 5.0);
    }

    /// The lane-blocked f32 squared distance stays within lanes-rounding
    /// tolerance of the sequential reference at every length, including
    /// the tail path, and is exact on exactly-representable inputs.
    #[test]
    fn sqdist_f32_lanes_close_to_sequential() {
        assert_eq!(sqdist_f32(&[0.0, 3.0], &[4.0, 0.0]), 25.0);
        assert_eq!(sqdist_lanes_f32(&[0.0, 3.0], &[4.0, 0.0]), 25.0);
        for n in [1usize, 3, 4, 5, 8, 16, 17, 33, 64] {
            let (a, b) = vecs(n);
            let exact: f64 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| {
                    let d = f64::from(x) - f64::from(y);
                    d * d
                })
                .sum();
            assert!(
                (f64::from(sqdist_f32(&a, &b)) - exact).abs() < 1e-4,
                "seq dim {n}"
            );
            assert!(
                (f64::from(sqdist_lanes_f32(&a, &b)) - exact).abs() < 1e-4,
                "lanes dim {n}"
            );
        }
    }

    /// The 4-pair kernel must match four independent sequential calls
    /// bit for bit — that is what keeps the cache-blocked dissimilarity
    /// matrix byte-identical to the row-by-row build.
    #[test]
    fn sqdist4_bit_identical_to_four_singles() {
        for d in [1usize, 2, 7, 8, 16, 33, 64] {
            let mk = |s: usize| -> Vec<f64> {
                (0..d)
                    .map(|i| ((i * 31 + s * 17) as f64 * 0.123).sin() * 10.0)
                    .collect()
            };
            let a = mk(0);
            let bs: Vec<Vec<f64>> = (1..5).map(mk).collect();
            let quad = sqdist4_f64(&a, &bs[0], &bs[1], &bs[2], &bs[3]);
            for k in 0..4 {
                assert_eq!(
                    quad[k].to_bits(),
                    sqdist_f64(&a, &bs[k]).to_bits(),
                    "dim {d} pair {k}"
                );
            }
        }
    }
}
