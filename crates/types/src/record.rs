//! Signal records, floor labels and samples.

use crate::{MacAddr, Rssi, TypesError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identifier of one signal record within a dataset.
///
/// Record ids are dense indices assigned by [`crate::Dataset`] /
/// the graph layer; they are *not* stable across datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RecordId(pub u32);

impl RecordId {
    /// Returns the id as a `usize` index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floor number. Ground floor is `0`; basements are negative.
///
/// # Examples
///
/// ```
/// use grafics_types::FloorId;
///
/// assert!(FloorId(2) > FloorId(0));
/// assert_eq!(FloorId(-1).to_string(), "B1");
/// assert_eq!(FloorId(0).to_string(), "GF");
/// assert_eq!(FloorId(3).to_string(), "3F");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FloorId(pub i16);

impl fmt::Display for FloorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "GF"),
            n if n < 0 => write!(f, "B{}", -n),
            n => write!(f, "{n}F"),
        }
    }
}

/// One `(MAC, RSS)` observation inside a scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reading {
    /// The observed BSSID.
    pub mac: MacAddr,
    /// Its received signal strength.
    pub rssi: Rssi,
}

impl Reading {
    /// Convenience constructor.
    #[must_use]
    pub const fn new(mac: MacAddr, rssi: Rssi) -> Self {
        Reading { mac, rssi }
    }
}

/// One crowdsourced RF scan: a variable-length list of MAC/RSS readings.
///
/// Invariants enforced at construction:
///
/// - at least one reading (the paper discards empty scans);
/// - readings are sorted by MAC and deduplicated — if a scan reports the
///   same BSSID twice, the **strongest** reading is kept (commodity scan
///   APIs occasionally emit duplicates).
///
/// # Examples
///
/// ```
/// use grafics_types::{MacAddr, Rssi, Reading, SignalRecord};
///
/// let rec = SignalRecord::new(vec![
///     Reading::new(MacAddr::from_u64(2), Rssi::new(-70.0).unwrap()),
///     Reading::new(MacAddr::from_u64(1), Rssi::new(-66.0).unwrap()),
///     Reading::new(MacAddr::from_u64(2), Rssi::new(-60.0).unwrap()),
/// ]).unwrap();
/// assert_eq!(rec.len(), 2);
/// assert_eq!(rec.readings()[1].rssi.dbm(), -60.0); // strongest duplicate kept
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalRecord {
    readings: Vec<Reading>,
}

impl SignalRecord {
    /// Builds a record from raw readings, sorting by MAC and collapsing
    /// duplicates to the strongest RSS.
    ///
    /// # Errors
    ///
    /// Returns [`TypesError::EmptyRecord`] if `readings` is empty.
    pub fn new(mut readings: Vec<Reading>) -> Result<Self, TypesError> {
        if readings.is_empty() {
            return Err(TypesError::EmptyRecord);
        }
        readings.sort_by(|a, b| a.mac.cmp(&b.mac).then(a.rssi.cmp(&b.rssi)));
        readings.dedup_by(|next, prev| {
            if next.mac == prev.mac {
                // `readings` is sorted ascending by (mac, rssi); `next`
                // follows `prev`, so `next.rssi >= prev.rssi`. Keep `next`.
                prev.rssi = next.rssi;
                true
            } else {
                false
            }
        });
        Ok(SignalRecord { readings })
    }

    /// The readings, sorted ascending by MAC, one per MAC.
    #[must_use]
    pub fn readings(&self) -> &[Reading] {
        &self.readings
    }

    /// Number of distinct MACs observed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.readings.len()
    }

    /// Always `false`: records are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns the RSS for `mac`, if observed.
    #[must_use]
    pub fn rssi_of(&self, mac: MacAddr) -> Option<Rssi> {
        self.readings
            .binary_search_by(|r| r.mac.cmp(&mac))
            .ok()
            .map(|i| self.readings[i].rssi)
    }

    /// Iterator over the observed MACs (ascending).
    pub fn macs(&self) -> impl Iterator<Item = MacAddr> + '_ {
        self.readings.iter().map(|r| r.mac)
    }

    /// The strongest reading in the record.
    #[must_use]
    pub fn strongest(&self) -> Reading {
        *self
            .readings
            .iter()
            .max_by(|a, b| a.rssi.cmp(&b.rssi))
            .expect("record is non-empty by construction")
    }

    /// Overlap ratio between two records: `|A ∩ B| / |A ∪ B|` over their
    /// MAC sets (the statistic of the paper's Fig. 1(b)).
    #[must_use]
    pub fn overlap_ratio(&self, other: &SignalRecord) -> f64 {
        let (mut i, mut j, mut inter) = (0usize, 0usize, 0usize);
        let (a, b) = (&self.readings, &other.readings);
        while i < a.len() && j < b.len() {
            match a[i].mac.cmp(&b[j].mac) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    inter += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let union = a.len() + b.len() - inter;
        inter as f64 / union as f64
    }

    /// Returns a copy keeping only readings whose MAC satisfies `keep`.
    /// Returns `None` if no reading survives (used by the Fig. 17
    /// MAC-removal experiment and the outside-building rule of §V).
    #[must_use]
    pub fn filtered<F: FnMut(MacAddr) -> bool>(&self, mut keep: F) -> Option<SignalRecord> {
        let readings: Vec<Reading> = self
            .readings
            .iter()
            .copied()
            .filter(|r| keep(r.mac))
            .collect();
        if readings.is_empty() {
            None
        } else {
            Some(SignalRecord { readings })
        }
    }
}

/// A signal record together with its (optional) floor label.
///
/// In a crowdsourced corpus only a small minority of samples are labelled
/// (e.g. via QR-code check-ins); GRAFICS is designed around that scarcity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// The RF scan itself.
    pub record: SignalRecord,
    /// The floor on which the scan was taken, if known.
    pub floor: Option<FloorId>,
    /// Ground-truth floor, carried for *evaluation only*. Training code
    /// must never read this; it is what test harnesses score against.
    pub ground_truth: FloorId,
}

impl Sample {
    /// Creates a labelled sample (label == ground truth).
    #[must_use]
    pub fn labeled(record: SignalRecord, floor: FloorId) -> Self {
        Sample {
            record,
            floor: Some(floor),
            ground_truth: floor,
        }
    }

    /// Creates an unlabelled sample whose true floor is `ground_truth`.
    #[must_use]
    pub fn unlabeled(record: SignalRecord, ground_truth: FloorId) -> Self {
        Sample {
            record,
            floor: None,
            ground_truth,
        }
    }

    /// `true` if the sample carries a floor label visible to training.
    #[must_use]
    pub fn is_labeled(&self) -> bool {
        self.floor.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(macs: &[(u64, f64)]) -> SignalRecord {
        SignalRecord::new(
            macs.iter()
                .map(|&(m, r)| Reading::new(MacAddr::from_u64(m), Rssi::new(r).unwrap()))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn empty_record_rejected() {
        assert_eq!(SignalRecord::new(vec![]), Err(TypesError::EmptyRecord));
    }

    #[test]
    fn readings_sorted_and_deduped_strongest() {
        let rec = mk(&[(5, -80.0), (1, -60.0), (5, -40.0), (5, -90.0)]);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.readings()[0].mac, MacAddr::from_u64(1));
        assert_eq!(rec.rssi_of(MacAddr::from_u64(5)).unwrap().dbm(), -40.0);
    }

    #[test]
    fn rssi_of_missing_mac() {
        let rec = mk(&[(1, -60.0)]);
        assert_eq!(rec.rssi_of(MacAddr::from_u64(2)), None);
    }

    #[test]
    fn strongest_reading() {
        let rec = mk(&[(1, -90.0), (2, -30.0), (3, -60.0)]);
        assert_eq!(rec.strongest().mac, MacAddr::from_u64(2));
    }

    #[test]
    fn overlap_ratio_identical_and_disjoint() {
        let a = mk(&[(1, -60.0), (2, -70.0)]);
        let b = mk(&[(3, -60.0), (4, -70.0)]);
        assert_eq!(a.overlap_ratio(&a), 1.0);
        assert_eq!(a.overlap_ratio(&b), 0.0);
    }

    #[test]
    fn overlap_ratio_partial() {
        let a = mk(&[(1, -60.0), (2, -70.0), (3, -80.0)]);
        let b = mk(&[(2, -65.0), (3, -72.0), (4, -90.0)]);
        // intersection {2,3} = 2, union {1,2,3,4} = 4
        assert!((a.overlap_ratio(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn filtered_keeps_subset_or_none() {
        let rec = mk(&[(1, -60.0), (2, -70.0)]);
        let only1 = rec.filtered(|m| m == MacAddr::from_u64(1)).unwrap();
        assert_eq!(only1.len(), 1);
        assert!(rec.filtered(|_| false).is_none());
    }

    #[test]
    fn floor_display() {
        assert_eq!(FloorId(-2).to_string(), "B2");
        assert_eq!(FloorId(0).to_string(), "GF");
        assert_eq!(FloorId(11).to_string(), "11F");
    }

    #[test]
    fn sample_label_visibility() {
        let rec = mk(&[(1, -60.0)]);
        let lab = Sample::labeled(rec.clone(), FloorId(3));
        let unl = Sample::unlabeled(rec, FloorId(3));
        assert!(lab.is_labeled());
        assert!(!unl.is_labeled());
        assert_eq!(unl.ground_truth, FloorId(3));
        assert_eq!(unl.floor, None);
    }

    #[test]
    fn serde_roundtrip_sample() {
        let s = Sample::labeled(mk(&[(1, -60.0), (9, -80.5)]), FloorId(2));
        let json = serde_json::to_string(&s).unwrap();
        let back: Sample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
