//! Building identity for fleet-scale deployments.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identifier of one building within a serving fleet.
///
/// City-scale deployments (the paper evaluates 204 Hangzhou buildings and
/// five Hong Kong facilities) shard the model per building; a
/// `BuildingId` names one shard. Ids are dense indices assigned by the
/// fleet layer — like [`crate::RecordId`] they are *not* globally stable,
/// only stable within one fleet.
///
/// # Examples
///
/// ```
/// use grafics_types::BuildingId;
///
/// assert!(BuildingId(2) > BuildingId(0));
/// assert_eq!(BuildingId(7).to_string(), "b7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BuildingId(pub u32);

impl BuildingId {
    /// Returns the id as a `usize` index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BuildingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_display() {
        assert!(BuildingId(0) < BuildingId(1));
        assert_eq!(BuildingId(12).to_string(), "b12");
        assert_eq!(BuildingId(3).index(), 3);
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&BuildingId(9)).unwrap();
        assert_eq!(json, "9");
        let back: BuildingId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, BuildingId(9));
    }
}
