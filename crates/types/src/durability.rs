//! Durability policy for the serving tier's absorb write-ahead log.
//!
//! The WAL itself lives in `grafics-core`; this crate only owns the
//! *policy* vocabulary so that the manifest (`fleet.json`), the CLI and
//! the serve tier all speak the same type without a dependency cycle.

use serde::{Deserialize, Serialize};

/// How aggressively the absorb write-ahead log is forced to disk.
///
/// Appends always reach the OS write path immediately (the group-commit
/// buffer is drained by a dedicated flusher thread); the policy decides
/// when `fsync` is called, i.e. how many acknowledged absorbs a power
/// loss may take back:
///
/// - [`DurabilityPolicy::Off`] — no WAL at all. Crash loses everything
///   since the last explicit save. This is the historical behaviour.
/// - [`DurabilityPolicy::FsyncEveryN`] — fsync after every `n` appended
///   records (and on publish/shutdown). `FsyncEveryN(1)` is
///   fsync-per-append, the strongest setting.
/// - [`DurabilityPolicy::FsyncEveryMs`] — fsync whenever dirty appends
///   are at least `ms` milliseconds old (and on publish/shutdown),
///   bounding the loss window in time instead of record count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DurabilityPolicy {
    /// No write-ahead logging.
    #[default]
    Off,
    /// Fsync after every `n` appended records (`n == 0` is treated as 1).
    FsyncEveryN(u32),
    /// Fsync once dirty appends are at least `ms` milliseconds old
    /// (`ms == 0` is treated as fsync-per-append).
    FsyncEveryMs(u64),
}

impl DurabilityPolicy {
    /// `true` when no WAL is kept at all.
    #[must_use]
    pub fn is_off(&self) -> bool {
        matches!(self, DurabilityPolicy::Off)
    }

    /// The fsync batch size in records, if the policy is count-based.
    /// Clamps the degenerate `FsyncEveryN(0)` to 1.
    #[must_use]
    pub fn fsync_every_n(&self) -> Option<u32> {
        match self {
            DurabilityPolicy::FsyncEveryN(n) => Some((*n).max(1)),
            _ => None,
        }
    }

    /// The fsync interval in milliseconds, if the policy is time-based.
    #[must_use]
    pub fn fsync_every_ms(&self) -> Option<u64> {
        match self {
            DurabilityPolicy::FsyncEveryMs(ms) => Some(*ms),
            _ => None,
        }
    }

    /// Parses the CLI spelling: `off`, `fsync:N` (count-based) or
    /// `fsync_ms:T` (time-based).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown spellings.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("off") {
            return Ok(DurabilityPolicy::Off);
        }
        if let Some(n) = spec.strip_prefix("fsync:") {
            return n
                .parse::<u32>()
                .map(DurabilityPolicy::FsyncEveryN)
                .map_err(|_| format!("bad fsync count in durability policy {spec:?}"));
        }
        if let Some(ms) = spec.strip_prefix("fsync_ms:") {
            return ms
                .parse::<u64>()
                .map(DurabilityPolicy::FsyncEveryMs)
                .map_err(|_| format!("bad fsync interval in durability policy {spec:?}"));
        }
        Err(format!(
            "unknown durability policy {spec:?} (expected off | fsync:N | fsync_ms:T)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        assert_eq!(DurabilityPolicy::parse("off"), Ok(DurabilityPolicy::Off));
        assert_eq!(
            DurabilityPolicy::parse("fsync:64"),
            Ok(DurabilityPolicy::FsyncEveryN(64))
        );
        assert_eq!(
            DurabilityPolicy::parse("fsync_ms:250"),
            Ok(DurabilityPolicy::FsyncEveryMs(250))
        );
        assert!(DurabilityPolicy::parse("sometimes").is_err());
        assert!(DurabilityPolicy::parse("fsync:lots").is_err());
    }

    #[test]
    fn serde_round_trip() {
        for policy in [
            DurabilityPolicy::Off,
            DurabilityPolicy::FsyncEveryN(8),
            DurabilityPolicy::FsyncEveryMs(100),
        ] {
            let json = serde_json::to_string(&policy).unwrap();
            let back: DurabilityPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(policy, back);
        }
    }

    #[test]
    fn degenerate_knobs_clamp() {
        assert_eq!(DurabilityPolicy::FsyncEveryN(0).fsync_every_n(), Some(1));
        assert_eq!(DurabilityPolicy::Off.fsync_every_n(), None);
        assert_eq!(DurabilityPolicy::FsyncEveryMs(0).fsync_every_ms(), Some(0));
    }
}
