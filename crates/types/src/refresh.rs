//! Drift-triggered refresh policy for the serving tier.
//!
//! The refresh machinery itself lives in `grafics-core` (the margin
//! window on each shard and the daemon acting on it); this crate only
//! owns the *policy* vocabulary so that the manifest (`fleet.json`), the
//! CLI, the scenario engine and the serve tier all speak the same type
//! without a dependency cycle — the same split as [`DurabilityPolicy`].
//!
//! [`DurabilityPolicy`]: crate::DurabilityPolicy

use serde::{Deserialize, Serialize};

/// When to re-train a shard's write side *because the fleet observed
/// drift*, instead of (or in addition to) a blind publish-count cadence.
///
/// The signal is the shard's served **floor-margin distribution**: every
/// successful serve records its distance gap to the nearest
/// different-floor cluster into a sliding window, and the window's low
/// quantile (p10) is a live confidence gauge. Environment drift — AP
/// churn, transmit-power shifts, new device populations — pushes queries
/// towards cluster boundaries and drags that quantile down long before
/// accuracy visibly collapses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RefreshTrigger {
    /// Refresh when the sliding-window margin p10 drops below `ratio` of
    /// its post-refresh baseline.
    ///
    /// `window` is the number of most-recent served margins considered
    /// (and the minimum evidence before the trigger can act at all);
    /// the first full window after a refresh establishes the baseline.
    /// `window == 0` is treated as disabled, mirroring the other
    /// maintenance knobs' `Some(0)` convention.
    MarginDrop {
        /// Sliding-window length in served queries (0 = disabled).
        window: usize,
        /// Trigger threshold as a fraction of the baseline p10, e.g.
        /// `0.5` refreshes once confidence halves. Values `>= 1.0`
        /// trigger on any decline; `<= 0.0` never triggers.
        ratio: f64,
    },
}

impl RefreshTrigger {
    /// `true` if this trigger can never fire (degenerate knobs).
    #[must_use]
    pub fn is_noop(&self) -> bool {
        match self {
            RefreshTrigger::MarginDrop { window, ratio } => *window == 0 || *ratio <= 0.0,
        }
    }

    /// The sliding-window length the trigger evaluates over.
    #[must_use]
    pub fn window(&self) -> usize {
        match self {
            RefreshTrigger::MarginDrop { window, .. } => *window,
        }
    }

    /// Parses the CLI spelling: `margin:WINDOW:RATIO`, e.g.
    /// `margin:256:0.5`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown spellings.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if let Some(rest) = spec.strip_prefix("margin:") {
            let (window, ratio) = rest
                .split_once(':')
                .ok_or_else(|| format!("bad refresh trigger {spec:?} (expected margin:W:R)"))?;
            let window = window
                .parse::<usize>()
                .map_err(|_| format!("bad window in refresh trigger {spec:?}"))?;
            let ratio = ratio
                .parse::<f64>()
                .map_err(|_| format!("bad ratio in refresh trigger {spec:?}"))?;
            return Ok(RefreshTrigger::MarginDrop { window, ratio });
        }
        Err(format!(
            "unknown refresh trigger {spec:?} (expected margin:WINDOW:RATIO)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        assert_eq!(
            RefreshTrigger::parse("margin:256:0.5"),
            Ok(RefreshTrigger::MarginDrop {
                window: 256,
                ratio: 0.5
            })
        );
        assert!(RefreshTrigger::parse("margin:256").is_err());
        assert!(RefreshTrigger::parse("margin:w:0.5").is_err());
        assert!(RefreshTrigger::parse("cadence:3").is_err());
    }

    #[test]
    fn serde_round_trip() {
        let t = RefreshTrigger::MarginDrop {
            window: 64,
            ratio: 0.7,
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: RefreshTrigger = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn degenerate_knobs_are_noop() {
        assert!(RefreshTrigger::MarginDrop {
            window: 0,
            ratio: 0.5
        }
        .is_noop());
        assert!(RefreshTrigger::MarginDrop {
            window: 8,
            ratio: 0.0
        }
        .is_noop());
        assert!(!RefreshTrigger::MarginDrop {
            window: 8,
            ratio: 0.5
        }
        .is_noop());
    }
}
