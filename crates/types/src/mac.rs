//! 48-bit IEEE 802 MAC addresses.

use crate::TypesError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 48-bit MAC address identifying one access point (more precisely, one
/// BSSID — a physical AP may broadcast several).
///
/// Stored as the low 48 bits of a `u64`, which makes it `Copy`, hashable and
/// cheap to use as a graph-node key.
///
/// # Examples
///
/// ```
/// use grafics_types::MacAddr;
///
/// let mac: MacAddr = "a4:56:02:00:12:0f".parse().unwrap();
/// assert_eq!(mac.to_string(), "a4:56:02:00:12:0f");
/// assert_eq!(MacAddr::from_u64(0xa45602_00120f), mac);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MacAddr(u64);

impl MacAddr {
    /// The maximum representable address, `ff:ff:ff:ff:ff:ff`.
    pub const MAX: MacAddr = MacAddr(0xffff_ffff_ffff);

    /// Creates a MAC address from the low 48 bits of `raw`.
    ///
    /// Bits above the 48th are masked off so the invariant
    /// `mac.as_u64() <= MacAddr::MAX.as_u64()` always holds.
    #[must_use]
    pub const fn from_u64(raw: u64) -> Self {
        MacAddr(raw & 0xffff_ffff_ffff)
    }

    /// Creates a MAC address from six octets in transmission order.
    #[must_use]
    pub const fn from_octets(o: [u8; 6]) -> Self {
        MacAddr(
            ((o[0] as u64) << 40)
                | ((o[1] as u64) << 32)
                | ((o[2] as u64) << 24)
                | ((o[3] as u64) << 16)
                | ((o[4] as u64) << 8)
                | (o[5] as u64),
        )
    }

    /// Returns the address as a `u64` whose high 16 bits are zero.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the six octets in transmission order.
    #[must_use]
    pub const fn octets(self) -> [u8; 6] {
        [
            (self.0 >> 40) as u8,
            (self.0 >> 32) as u8,
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Returns `true` if this is the locally-administered bit pattern
    /// (second-least-significant bit of the first octet set). Crowdsourced
    /// datasets often contain randomised locally-administered MACs from
    /// phones; callers may wish to filter them.
    #[must_use]
    pub const fn is_locally_administered(self) -> bool {
        (self.octets()[0] & 0b0000_0010) != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl FromStr for MacAddr {
    type Err = TypesError;

    /// Parses `aa:bb:cc:dd:ee:ff` or `aa-bb-cc-dd-ee-ff` (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || TypesError::InvalidMac {
            input: s.to_owned(),
        };
        let sep = if s.contains(':') { ':' } else { '-' };
        let mut octets = [0u8; 6];
        let mut n = 0;
        for part in s.split(sep) {
            if n == 6 || part.len() != 2 {
                return Err(err());
            }
            octets[n] = u8::from_str_radix(part, 16).map_err(|_| err())?;
            n += 1;
        }
        if n != 6 {
            return Err(err());
        }
        Ok(MacAddr::from_octets(octets))
    }
}

impl From<u64> for MacAddr {
    fn from(raw: u64) -> Self {
        MacAddr::from_u64(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_display_parse() {
        let mac = MacAddr::from_octets([0xa4, 0x56, 0x02, 0x00, 0x12, 0x0f]);
        let s = mac.to_string();
        assert_eq!(s, "a4:56:02:00:12:0f");
        assert_eq!(s.parse::<MacAddr>().unwrap(), mac);
    }

    #[test]
    fn parses_dash_and_uppercase() {
        let mac: MacAddr = "A4-56-02-00-12-0F".parse().unwrap();
        assert_eq!(mac.as_u64(), 0xa456_0200_120f);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "a4:56",
            "a4:56:02:00:12:0f:aa",
            "zz:56:02:00:12:0f",
            "a456:02:00:12:0f:1",
        ] {
            assert!(bad.parse::<MacAddr>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn masks_high_bits() {
        assert_eq!(MacAddr::from_u64(u64::MAX), MacAddr::MAX);
    }

    #[test]
    fn locally_administered_bit() {
        assert!(MacAddr::from_octets([0x02, 0, 0, 0, 0, 1]).is_locally_administered());
        assert!(!MacAddr::from_octets([0x04, 0, 0, 0, 0, 1]).is_locally_administered());
    }

    #[test]
    fn ordering_matches_u64() {
        let a = MacAddr::from_u64(1);
        let b = MacAddr::from_u64(2);
        assert!(a < b);
    }

    #[test]
    fn serde_transparent() {
        let mac = MacAddr::from_u64(42);
        let json = serde_json::to_string(&mac).unwrap();
        assert_eq!(json, "42");
        assert_eq!(serde_json::from_str::<MacAddr>(&json).unwrap(), mac);
    }
}
