//! Health, failover, and admission-control policy types for the router
//! tier.
//!
//! The router itself lives in `grafics-serve`; this crate only owns the
//! *policy* vocabulary so that the manifest (`router.json`), the CLI and
//! the serve tier all speak the same types without a dependency cycle —
//! the same split used for [`crate::DurabilityPolicy`].

use serde::{Deserialize, Serialize};

/// Liveness of one backend process as seen by the router's prober.
///
/// Transitions are driven by active `/healthz` probes (see
/// [`HealthPolicy`]): `fail_threshold` consecutive probe failures demote
/// a backend to [`BackendState::Down`]; `recover_threshold` consecutive
/// successes promote it back to [`BackendState::Up`]. A backend that
/// answers probes but reports itself busy (HTTP 503, e.g. during WAL
/// replay) is [`BackendState::Degraded`]: alive, excluded from routing,
/// re-admitted without the full recover ladder once it reports healthy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendState {
    /// Probes succeed; the backend receives traffic.
    #[default]
    Up,
    /// The backend answers probes but reports itself not ready (503
    /// healthz, e.g. recovering its WAL). No traffic is routed to it,
    /// but its shards count as *transiently* missing, not lost.
    Degraded,
    /// Probes fail outright (connect refused, timeout). Its shards are
    /// excluded and responses touching them carry a `degraded` marker.
    Down,
}

impl BackendState {
    /// Stable lower-case name, used in `/metrics` labels and `/v1/stat`.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendState::Up => "up",
            BackendState::Degraded => "degraded",
            BackendState::Down => "down",
        }
    }

    /// `true` when the router may send this backend traffic.
    #[must_use]
    pub fn is_routable(&self) -> bool {
        matches!(self, BackendState::Up)
    }
}

/// Active health-checking policy: how often the router probes each
/// backend's `/healthz`, how long one probe may take, and how many
/// consecutive results flip the backend's [`BackendState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthPolicy {
    /// Milliseconds between probe rounds (`0` is clamped to 1).
    pub probe_interval_ms: u64,
    /// Per-probe timeout in milliseconds (`0` is clamped to 1).
    pub probe_timeout_ms: u64,
    /// Consecutive probe failures before a backend is marked Down
    /// (`0` is clamped to 1).
    pub fail_threshold: u32,
    /// Consecutive probe successes before a Down backend is marked Up
    /// (`0` is clamped to 1).
    pub recover_threshold: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            probe_interval_ms: 500,
            probe_timeout_ms: 250,
            fail_threshold: 3,
            recover_threshold: 2,
        }
    }
}

impl HealthPolicy {
    /// Probe interval with the degenerate `0` clamped to 1 ms.
    #[must_use]
    pub fn interval_ms(&self) -> u64 {
        self.probe_interval_ms.max(1)
    }

    /// Probe timeout with the degenerate `0` clamped to 1 ms.
    #[must_use]
    pub fn timeout_ms(&self) -> u64 {
        self.probe_timeout_ms.max(1)
    }

    /// Failure threshold with the degenerate `0` clamped to 1.
    #[must_use]
    pub fn failures_to_down(&self) -> u32 {
        self.fail_threshold.max(1)
    }

    /// Recovery threshold with the degenerate `0` clamped to 1.
    #[must_use]
    pub fn successes_to_up(&self) -> u32 {
        self.recover_threshold.max(1)
    }

    /// Parses the CLI spelling `INTERVAL_MS/TIMEOUT_MS/FAIL/RECOVER`
    /// (e.g. `500/250/3/2`), or `default`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown spellings.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("default") {
            return Ok(HealthPolicy::default());
        }
        let bad = || {
            format!("bad health policy {spec:?} (expected INTERVAL_MS/TIMEOUT_MS/FAIL/RECOVER or default)")
        };
        let mut parts = spec.split('/');
        let next_u64 = |parts: &mut std::str::Split<'_, char>| {
            parts
                .next()
                .and_then(|p| p.trim().parse::<u64>().ok())
                .ok_or_else(bad)
        };
        let interval = next_u64(&mut parts)?;
        let timeout = next_u64(&mut parts)?;
        let fail = next_u64(&mut parts)?;
        let recover = next_u64(&mut parts)?;
        if parts.next().is_some() {
            return Err(bad());
        }
        Ok(HealthPolicy {
            probe_interval_ms: interval,
            probe_timeout_ms: timeout,
            fail_threshold: u32::try_from(fail).map_err(|_| bad())?,
            recover_threshold: u32::try_from(recover).map_err(|_| bad())?,
        })
    }
}

/// Per-backend circuit-breaker policy. Independent of the prober: the
/// breaker reacts to *request* failures on the hot path, so a backend
/// that dies between probe rounds stops costing connect timeouts after
/// `trip_threshold` consecutive request failures. After `cooldown_ms`
/// the breaker goes half-open: exactly one trial request is let through,
/// and its outcome closes or re-trips the breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Consecutive request failures that trip the breaker open
    /// (`0` is clamped to 1).
    pub trip_threshold: u32,
    /// Milliseconds the breaker stays open before allowing a half-open
    /// trial request.
    pub cooldown_ms: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            trip_threshold: 3,
            cooldown_ms: 500,
        }
    }
}

impl BreakerPolicy {
    /// Trip threshold with the degenerate `0` clamped to 1.
    #[must_use]
    pub fn failures_to_trip(&self) -> u32 {
        self.trip_threshold.max(1)
    }

    /// Parses the CLI spelling `TRIP/COOLDOWN_MS` (e.g. `3/500`), or
    /// `default`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown spellings.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("default") {
            return Ok(BreakerPolicy::default());
        }
        let bad = || format!("bad breaker policy {spec:?} (expected TRIP/COOLDOWN_MS or default)");
        let (trip, cooldown) = spec.split_once('/').ok_or_else(bad)?;
        Ok(BreakerPolicy {
            trip_threshold: trip.trim().parse().map_err(|_| bad())?,
            cooldown_ms: cooldown.trim().parse().map_err(|_| bad())?,
        })
    }
}

/// Per-client admission control on the router: a token bucket keyed by
/// peer IP. Each client earns `rate_per_sec` tokens per second up to a
/// burst capacity of `burst`; a request costs one token, and an empty
/// bucket yields HTTP 429 with a `Retry-After` hint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateLimitPolicy {
    /// No admission control (the historical behaviour).
    #[default]
    Off,
    /// Token bucket per peer IP.
    PerClient {
        /// Sustained requests per second each client may issue
        /// (`0` is clamped to 1).
        rate_per_sec: u32,
        /// Bucket capacity: how far above the sustained rate a client
        /// may burst (`0` is clamped to 1).
        burst: u32,
    },
}

impl RateLimitPolicy {
    /// `true` when no admission control is applied.
    #[must_use]
    pub fn is_off(&self) -> bool {
        matches!(self, RateLimitPolicy::Off)
    }

    /// `(rate_per_sec, burst)` with degenerate zeros clamped to 1, if
    /// the policy is active.
    #[must_use]
    pub fn per_client(&self) -> Option<(u32, u32)> {
        match self {
            RateLimitPolicy::Off => None,
            RateLimitPolicy::PerClient {
                rate_per_sec,
                burst,
            } => Some(((*rate_per_sec).max(1), (*burst).max(1))),
        }
    }

    /// Parses the CLI spelling: `off` or `RATE/BURST` (e.g. `50/100`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown spellings.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("off") {
            return Ok(RateLimitPolicy::Off);
        }
        let bad = || format!("bad rate-limit policy {spec:?} (expected off | RATE/BURST)");
        let (rate, burst) = spec.split_once('/').ok_or_else(bad)?;
        Ok(RateLimitPolicy::PerClient {
            rate_per_sec: rate.trim().parse().map_err(|_| bad())?,
            burst: burst.trim().parse().map_err(|_| bad())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_parse_round_trip() {
        assert_eq!(HealthPolicy::parse("default"), Ok(HealthPolicy::default()));
        assert_eq!(
            HealthPolicy::parse("100/50/5/1"),
            Ok(HealthPolicy {
                probe_interval_ms: 100,
                probe_timeout_ms: 50,
                fail_threshold: 5,
                recover_threshold: 1,
            })
        );
        assert!(HealthPolicy::parse("100/50/5").is_err());
        assert!(HealthPolicy::parse("100/50/5/1/9").is_err());
        assert!(HealthPolicy::parse("fast").is_err());
    }

    #[test]
    fn breaker_and_rate_limit_parse() {
        assert_eq!(
            BreakerPolicy::parse("5/250"),
            Ok(BreakerPolicy {
                trip_threshold: 5,
                cooldown_ms: 250,
            })
        );
        assert!(BreakerPolicy::parse("5").is_err());
        assert_eq!(RateLimitPolicy::parse("off"), Ok(RateLimitPolicy::Off));
        assert_eq!(
            RateLimitPolicy::parse("50/100"),
            Ok(RateLimitPolicy::PerClient {
                rate_per_sec: 50,
                burst: 100,
            })
        );
        assert!(RateLimitPolicy::parse("many").is_err());
    }

    #[test]
    fn serde_round_trip() {
        let json = serde_json::to_string(&HealthPolicy::default()).unwrap();
        let back: HealthPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, HealthPolicy::default());

        for state in [BackendState::Up, BackendState::Degraded, BackendState::Down] {
            let json = serde_json::to_string(&state).unwrap();
            let back: BackendState = serde_json::from_str(&json).unwrap();
            assert_eq!(state, back);
        }

        for policy in [
            RateLimitPolicy::Off,
            RateLimitPolicy::PerClient {
                rate_per_sec: 10,
                burst: 20,
            },
        ] {
            let json = serde_json::to_string(&policy).unwrap();
            let back: RateLimitPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(policy, back);
        }
    }

    #[test]
    fn degenerate_knobs_clamp() {
        let zero = HealthPolicy {
            probe_interval_ms: 0,
            probe_timeout_ms: 0,
            fail_threshold: 0,
            recover_threshold: 0,
        };
        assert_eq!(zero.interval_ms(), 1);
        assert_eq!(zero.timeout_ms(), 1);
        assert_eq!(zero.failures_to_down(), 1);
        assert_eq!(zero.successes_to_up(), 1);
        assert_eq!(
            BreakerPolicy {
                trip_threshold: 0,
                cooldown_ms: 0,
            }
            .failures_to_trip(),
            1
        );
        assert_eq!(
            RateLimitPolicy::PerClient {
                rate_per_sec: 0,
                burst: 0,
            }
            .per_client(),
            Some((1, 1))
        );
        assert!(BackendState::Up.is_routable());
        assert!(!BackendState::Degraded.is_routable());
    }
}
