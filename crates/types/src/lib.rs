//! Core data types shared by every crate in the GRAFICS workspace.
//!
//! GRAFICS ("GRAph embedding-based Floor Identification using Crowdsourced
//! RF Signals", ICDCS 2022) consumes *crowdsourced RF signal records*: each
//! record is the result of one WiFi scan and holds the set of observed
//! access-point MAC addresses together with their received signal strength
//! (RSS) values. Only a small minority of records carry a floor label.
//!
//! This crate defines the vocabulary types for that domain:
//!
//! - [`MacAddr`] — a 48-bit IEEE 802 MAC address.
//! - [`Rssi`] — a received-signal-strength value in dBm.
//! - [`Reading`] — one `(MacAddr, Rssi)` observation inside a scan.
//! - [`SignalRecord`] — a full scan: a variable-length list of readings.
//! - [`FloorId`] — a floor number (basements are negative).
//! - [`Sample`] — a record plus an *optional* floor label.
//! - [`Dataset`] — an owned collection of samples with split/label helpers.
//! - [`BuildingId`] — a building (= fleet shard) identifier.
//!
//! It also hosts the workspace's **math backbone** — shared by the
//! embedding, clustering, and neural-network crates so there is exactly
//! one copy of each dense-math kernel:
//!
//! - [`RowMatrix`] — a contiguous row-major matrix (`f32` for the `nn`
//!   substrate, `f64` for cluster points/centroids).
//! - [`kernels`] — the SIMD-friendly dot / axpy / squared-distance
//!   kernels (sequential-exact, fixed-lane FMA, and lane-blocked FMA
//!   variants; see the module docs for which contract to pick).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod building_id;
mod dataset;
mod durability;
mod error;
mod health;
pub mod kernels;
mod mac;
mod matrix;
mod record;
mod refresh;
mod rssi;

pub use building_id::BuildingId;
pub use dataset::{Dataset, DatasetStats, Split};
pub use durability::DurabilityPolicy;
pub use error::TypesError;
pub use health::{BackendState, BreakerPolicy, HealthPolicy, RateLimitPolicy};
pub use mac::MacAddr;
pub use matrix::RowMatrix;
pub use record::{FloorId, Reading, RecordId, Sample, SignalRecord};
pub use refresh::RefreshTrigger;
pub use rssi::Rssi;
