//! Multi-building deployment report: run GRAFICS and every baseline over
//! the five Hong Kong-archetype facilities, save the corpus snapshots as
//! JSONL, and print the comparison table — a miniature of the paper's
//! evaluation (§VI-B).
//!
//! ```sh
//! cargo run --release --example fleet_report
//! ```

use grafics::baselines::{
    AutoencoderProx, BaselineConfig, FloorClassifier, MatrixProx, MdsProx, Sae, ScalableDnn,
};
use grafics::prelude::*;
use grafics_metrics::ConfusionMatrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let fleet = FleetPreset::HongKong.generate(5, 80, &mut rng);
    let out_dir = std::path::Path::new("results");
    std::fs::create_dir_all(out_dir).ok();

    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "building", "GRAFICS", "ScalDNN", "SAE", "MDS", "AutoEnc", "Matrix"
    );
    for building in &fleet {
        let ds = building.simulate(&mut rng);
        // Persist the corpus for reproducibility.
        let snapshot = out_dir.join(format!("{}.jsonl", building.name));
        grafics::data::io::save_jsonl(&ds, &snapshot).expect("snapshot");

        let split = ds.split(0.7, &mut rng).expect("split");
        let train = split.train.with_label_budget(4, &mut rng);
        let test = &split.test;

        let mut scores: Vec<f64> = Vec::new();
        // GRAFICS.
        let mut g = Grafics::train(&train, &GraficsConfig::default(), &mut rng).expect("train");
        let mut cm = ConfusionMatrix::new();
        for s in test.samples() {
            if let Ok(p) = g.infer(&s.record, &mut rng) {
                cm.observe(s.ground_truth, p.floor);
            }
        }
        scores.push(cm.report().micro_f);
        // Baselines.
        let bl_cfg = BaselineConfig::default();
        scores.push(score(
            &mut ScalableDnn::train(&train, &bl_cfg, &mut rng).expect("sdnn"),
            test,
        ));
        scores.push(score(
            &mut Sae::train(&train, &bl_cfg, &mut rng).expect("sae"),
            test,
        ));
        scores.push(score(
            &mut MdsProx::train(&train, 8, &mut rng).expect("mds"),
            test,
        ));
        scores.push(score(
            &mut AutoencoderProx::train(&train, &bl_cfg, &mut rng).expect("ae"),
            test,
        ));
        scores.push(score(&mut MatrixProx::train(&train).expect("matrix"), test));

        print!("{:<14}", building.name);
        for s in scores {
            print!(" {s:>8.3}");
        }
        println!();
    }
    println!("\ncorpus snapshots saved under results/*.jsonl");
}

fn score<C: FloorClassifier>(model: &mut C, test: &Dataset) -> f64 {
    let mut cm = ConfusionMatrix::new();
    for s in test.samples() {
        if let Some(f) = model.predict(&s.record) {
            cm.observe(s.ground_truth, f);
        }
    }
    cm.report().micro_f
}
