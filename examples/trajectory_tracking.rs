//! Pedestrian-navigation support (paper §I): track a walker's floor along
//! a trajectory, with a confidence signal from the margin between the
//! nearest cluster and the nearest *different-floor* cluster. Predictions
//! near the stairwell are legitimately uncertain — the margin flags them
//! instead of silently guessing.
//!
//! ```sh
//! cargo run --release --example trajectory_tracking
//! ```

use grafics::prelude::*;
use grafics_data::{simulate_trajectory, TrajectoryConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let tower = BuildingModel::office("ifc-tower", 6).with_records_per_floor(120);
    let layout = tower.layout(&mut rng);
    let corpus = tower
        .simulate_with_layout(&layout, &mut rng)
        .filter_rare_macs(2);
    let train = corpus.with_label_budget(4, &mut rng);
    let mut model = Grafics::train(&train, &GraficsConfig::default(), &mut rng).expect("train");

    let walk = simulate_trajectory(
        &tower,
        &layout,
        &TrajectoryConfig {
            steps: 40,
            floor_change_prob: 0.12,
            ..Default::default()
        },
        &mut rng,
    );

    let mut correct = 0;
    let mut scored = 0;
    let mut uncertain = 0;
    println!(
        "{:>4} {:>6} {:>10} {:>8} {:>10}",
        "step", "truth", "predicted", "margin", "status"
    );
    for (i, point) in walk.iter().enumerate() {
        let Some(scan) = &point.scan else {
            println!(
                "{i:>4} {:>6} {:>10} {:>8} {:>10}",
                point.floor, "-", "-", "no scan"
            );
            continue;
        };
        let Ok(ranked) = model.infer_topk(scan, usize::MAX, &mut rng) else {
            continue;
        };
        let (best_floor, best_distance) = ranked[0];
        // Margin to the nearest candidate on a DIFFERENT floor.
        let rival = ranked.iter().find(|&&(floor, _)| floor != best_floor);
        let margin = rival.map_or(f64::INFINITY, |&(_, d)| d - best_distance);
        let confident = margin > 0.3;
        if !confident {
            uncertain += 1;
        }
        scored += 1;
        if best_floor == point.floor {
            correct += 1;
        }
        let status = match (best_floor == point.floor, confident) {
            (true, true) => "ok",
            (true, false) => "ok (low)",
            (false, false) => "MISS (low)",
            (false, true) => "MISS",
        };
        println!(
            "{i:>4} {:>6} {:>10} {:>8.3} {:>10}",
            point.floor, best_floor, margin, status
        );
    }
    println!(
        "\n{correct}/{scored} floor predictions correct along the walk; \
         {uncertain} flagged low-confidence"
    );
    assert!(correct * 10 >= scored * 7, "tracking accuracy too low");
}
