//! Quickstart: train GRAFICS on a simulated three-storey office and
//! identify the floor of held-out crowdsourced scans.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use grafics::prelude::*;
use grafics_metrics::ConfusionMatrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // 1. A crowdsourced corpus: 3 floors × 150 WiFi scans, simulated with
    //    log-distance path loss, floor attenuation and device noise.
    let building = BuildingModel::office("hq", 3).with_records_per_floor(150);
    let dataset = building.simulate(&mut rng);
    let stats = dataset.stats();
    println!(
        "corpus: {} records, {} MACs, {} floors",
        stats.records, stats.macs, stats.floors
    );

    // 2. The paper's protocol: 70/30 split, then hide all labels except
    //    four per floor (e.g. the few QR-code check-ins).
    let split = dataset.split(0.7, &mut rng).expect("valid ratio");
    let train = split.train.with_label_budget(4, &mut rng);
    println!(
        "training on {} records of which only {} are labelled",
        train.len(),
        train.stats().labeled
    );

    // 3. Offline training: bipartite graph -> E-LINE embeddings ->
    //    constrained proximity clustering.
    let model = Grafics::train(&train, &GraficsConfig::default(), &mut rng).expect("train");
    println!(
        "graph: {} record nodes, {} MAC nodes, {} edges; {} clusters",
        model.graph().record_count(),
        model.graph().mac_count(),
        model.graph().edge_count(),
        model.clusters().clusters().len()
    );

    // 4. Online inference on the held-out 30 %.
    let mut model = model;
    let mut cm = ConfusionMatrix::new();
    for sample in split.test.samples() {
        match model.infer(&sample.record, &mut rng) {
            Ok(pred) => cm.observe(sample.ground_truth, pred.floor),
            Err(e) => println!("skipped one record: {e}"),
        }
    }
    let report = cm.report();
    println!(
        "\nmicro-F {:.3}  macro-F {:.3}  accuracy {:.3} over {} test records",
        report.micro_f,
        report.macro_f,
        report.accuracy,
        cm.total()
    );
    for floor in &report.per_floor {
        println!(
            "  {}: precision {:.3} recall {:.3}",
            floor.floor, floor.precision, floor.recall
        );
    }
}
