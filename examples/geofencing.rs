//! Geofencing (paper §I): enforce that a person stays on an assigned
//! floor — e.g. home-quarantine or elderly-care monitoring — using nothing
//! but ambient WiFi scans.
//!
//! A monitored person walks a trajectory through a five-storey hospital;
//! every few steps their phone scans WiFi and GRAFICS infers the floor.
//! Leaving the assigned floor raises an alert.
//!
//! ```sh
//! cargo run --release --example geofencing
//! ```

use grafics::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let hospital = BuildingModel::hospital("st-marys", 5).with_records_per_floor(120);
    let layout = hospital.layout(&mut rng);
    let corpus = hospital.simulate_with_layout(&layout, &mut rng);

    // Train from the crowdsourced corpus with 4 labelled scans per floor.
    let train = corpus.with_label_budget(4, &mut rng);
    let mut model = Grafics::train(&train, &GraficsConfig::default(), &mut rng).expect("train");
    println!("geofence armed: patient assigned to floor 2F");

    // The patient's day: mostly ward (floor 2), one excursion to the
    // ground-floor lobby, then back.
    let assigned = FloorId(2);
    let trajectory: Vec<(f64, f64, i16)> = vec![
        (10.0, 10.0, 2),
        (14.0, 12.0, 2),
        (20.0, 15.0, 2),
        (30.0, 20.0, 2),
        (30.0, 20.0, 0), // takes the lift down
        (25.0, 18.0, 0),
        (18.0, 12.0, 0),
        (30.0, 20.0, 2), // returns
        (12.0, 11.0, 2),
    ];

    let mut alerts = 0;
    let mut correct = 0;
    for (step, &(x, y, floor)) in trajectory.iter().enumerate() {
        let Some(scan) = hospital.scan_at(&layout, x, y, floor, &mut rng) else {
            println!("step {step}: no APs audible, skipping");
            continue;
        };
        match model.infer(&scan, &mut rng) {
            Ok(pred) => {
                let truth = FloorId(floor);
                let status = if pred.floor == assigned {
                    "ok   "
                } else {
                    "ALERT"
                };
                if pred.floor != assigned {
                    alerts += 1;
                }
                if pred.floor == truth {
                    correct += 1;
                }
                println!(
                    "step {step}: at {truth} -> predicted {} [{status}] (distance to cluster {:.3})",
                    pred.floor, pred.distance
                );
            }
            Err(e) => println!("step {step}: {e}"),
        }
    }
    println!(
        "\n{} alerts raised during the ground-floor excursion; {}/{} floor predictions correct",
        alerts,
        correct,
        trajectory.len()
    );
    assert!(alerts >= 2, "the excursion should trip the geofence");
}
