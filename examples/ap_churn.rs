//! Dynamic RF environments (paper §III-A): access points get installed
//! and decommissioned over a deployment's lifetime. The bipartite graph
//! absorbs both without retraining from scratch — removed APs drop out of
//! the graph, new records (with never-seen MACs) extend it online.
//!
//! This example trains on a mall, then (1) decommissions 20 % of the APs
//! from the *graph*, (2) keeps inferring scans from the physically changed
//! mall, showing accuracy degrades gracefully rather than collapsing.
//!
//! ```sh
//! cargo run --release --example ap_churn
//! ```

use grafics::prelude::*;
use grafics_metrics::ConfusionMatrix;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let mall = BuildingModel::mall("harbour-city", 4).with_records_per_floor(120);
    let mut layout = mall.layout(&mut rng);
    let corpus = mall.simulate_with_layout(&layout, &mut rng);
    let train = corpus.with_label_budget(4, &mut rng);
    let mut model = Grafics::train(&train, &GraficsConfig::default(), &mut rng).expect("train");

    // Baseline accuracy before any churn.
    let acc_before = accuracy(&mall, &layout, &mut model, &mut rng, 200);
    println!("accuracy before churn: {acc_before:.3}");

    // Decommission 20% of the BSSIDs: remove them from the physical world
    // and from the graph, in place — no retraining.
    let mut macs = layout.macs();
    macs.shuffle(&mut rng);
    let removed = macs.len() / 5;
    let graph_macs_before = model.graph().mac_count();
    let kept: std::collections::HashSet<MacAddr> = macs[removed..].iter().copied().collect();
    layout.aps.retain(|ap| kept.contains(&ap.mac));
    for &mac in &macs[..removed] {
        if model.graph().mac_node(mac).is_some() {
            model.remove_ap(mac).expect("MAC is in the graph");
        }
    }
    println!(
        "decommissioned {} BSSIDs ({} -> {} MAC nodes in graph)",
        removed,
        graph_macs_before,
        model.graph().mac_count()
    );

    let acc_after = accuracy(&mall, &layout, &mut model, &mut rng, 200);
    println!("accuracy after churn:  {acc_after:.3}");
    assert!(
        acc_after > 0.6,
        "floor identification should degrade gracefully, got {acc_after:.3}"
    );
}

fn accuracy(
    building: &BuildingModel,
    layout: &grafics_data::BuildingLayout,
    model: &mut Grafics,
    rng: &mut ChaCha8Rng,
    scans: usize,
) -> f64 {
    let mut cm = ConfusionMatrix::new();
    for i in 0..scans {
        let floor = (i % building.floors as usize) as i16;
        let Some(scan) = building.scan(layout, floor, rng) else {
            continue;
        };
        if let Ok(pred) = model.infer(&scan, rng) {
            cm.observe(FloorId(floor), pred.floor);
        }
    }
    cm.report().accuracy
}
