//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! this workspace's property tests use. Differences from upstream: no
//! shrinking (a failing case panics with its inputs printed via the
//! assertion message), and cases are generated from a fixed ChaCha8
//! stream so failures are reproducible.

use rand_chacha::ChaCha8Rng;
use std::ops::{Range, RangeInclusive};

pub use rand::Rng as _;
pub use rand::SeedableRng as _;

/// The RNG handed to strategies.
pub type TestRng = ChaCha8Rng;

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the single-core CI runtime
        // reasonable while still exercising a broad input space.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u32(rng) & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(element, len_range)` — a vector whose length is drawn from
    /// `len_range` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `Some` with a given probability.
    pub struct Weighted<S> {
        probability: f64,
        inner: S,
    }

    /// `weighted(p, inner)` — `Some(inner)` with probability `p`, else `None`.
    pub fn weighted<S: Strategy>(probability: f64, inner: S) -> Weighted<S> {
        Weighted { probability, inner }
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rand::Rng::gen_bool(rng, self.probability) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// The aliases `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};

    /// Module alias so `prop::collection::vec` / `prop::option::weighted`
    /// resolve as they do with upstream proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Signals that the current case's inputs are invalid and must be skipped.
pub struct CaseRejected;

/// Asserts inside a property, reporting the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::CaseRejected);
        }
    };
}

/// Defines property tests: each `fn name(pattern in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Deterministic per-test stream; the test name participates
                // so sibling tests explore different inputs.
                let mut hasher = ::std::collections::hash_map::DefaultHasher::new();
                ::std::hash::Hash::hash(stringify!($name), &mut hasher);
                let seed = ::std::hash::Hasher::finish(&hasher);
                let mut rng = <$crate::TestRng as $crate::_SeedableRng>::seed_from_u64(seed);
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(20).max(1000),
                        "too many rejected cases in {}",
                        stringify!($name)
                    );
                    let case = |rng: &mut $crate::TestRng|
                        -> ::core::result::Result<(), $crate::CaseRejected> {
                        $(let $pat = $crate::Strategy::generate(&$strat, rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                    match case(&mut rng) {
                        ::core::result::Result::Ok(()) => accepted += 1,
                        ::core::result::Result::Err($crate::CaseRejected) => {}
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
pub use rand::SeedableRng as _SeedableRng;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        any::<u64>().prop_map(|v| v & !1)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 0usize..10, b in -5i16..=5, f in -1.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn mapped_strategy(v in arb_even()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vec_and_tuple((xs, n) in (prop::collection::vec(0u32..100, 1..8), 3usize..4)) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            prop_assert_eq!(n, 3);
        }

        #[test]
        fn flat_map_len(v in (2usize..6).prop_flat_map(|n| prop::collection::vec(0u8..9, n..=n))) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn option_weighted(o in prop::option::weighted(0.5, 0u32..5)) {
            if let Some(x) = o {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn assume_skips(v in 0u32..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }
    }
}
