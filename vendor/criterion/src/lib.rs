//! Offline stand-in for `criterion`.
//!
//! Implements the API shape the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `iter`,
//! `iter_batched`, `BatchSize`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`). Instead of full statistical analysis it runs a
//! fixed warm-up plus a measured batch and prints mean wall-clock time
//! per iteration — enough for relative comparisons in this offline
//! environment.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched setup's cost relates to the routine (accepted for API
/// parity; the stand-in treats all sizes the same).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Accepted wherever a benchmark is named (mirrors criterion's
/// `IntoBenchmarkId`): plain strings or structured [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// Converts into the canonical identifier.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// Measures closures passed to [`Bencher::iter`] / [`Bencher::iter_batched`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like [`Bencher::iter_batched`] with a mutable-reference routine.
    pub fn iter_batched_ref<I, O, S: FnMut() -> I, R: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut warm = setup();
        black_box(routine(&mut warm));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
    println!("bench {label:<48} {:>12.3} µs/iter", per_iter * 1e6);
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // A handful of measured iterations keeps `cargo bench` fast while
        // remaining comparable across invocations on the same machine.
        Criterion { iters: 5 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.iters, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            iters: self.iters,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Lowers or raises the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(2, 20);
        self
    }

    /// Accepted for API parity; the stand-in ignores target times.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<ID: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: ID,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        run_one(&format!("{}/{}", self.name, id.name), self.iters, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<ID: IntoBenchmarkId, I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        run_one(
            &format!("{}/{}", self.name, id.name),
            self.iters,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_surface_runs() {
        let mut c = Criterion::default();
        c.bench_function("smoke/iter", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }
}
