//! Offline stand-in for `serde_json`: renders the vendored `serde`'s
//! [`Value`] model to JSON text and parses JSON text back.
//!
//! Supports the full JSON grammar (nested arrays/objects, escapes,
//! exponents); numbers parse to `U64`/`I64` when integral so 64-bit ids
//! round-trip exactly, and floats print with `{:?}` (shortest
//! representation that round-trips).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Re-exported so callers can use `serde_json::Value`.
pub use serde::Value as JsonValue;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] (used by [`json!`]).
pub fn value_of<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` as compact JSON into a caller-owned buffer
/// (cleared first), so hot paths can reuse one allocation across calls.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors the real API.
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) -> Result<(), Error> {
    out.clear();
    write_compact(&value.to_value(), out);
    Ok(())
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Builds a [`Value`] literal: `json!({ "key": expr, ... })`,
/// `json!([a, b])`, or `json!(expr)`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::JsonValue::Null };
    ({ $($k:literal : $v:expr),* $(,)? }) => {
        $crate::JsonValue::Map(::std::vec![
            $( (::std::string::String::from($k), $crate::value_of(&$v)) ),*
        ])
    };
    ([ $($v:expr),* $(,)? ]) => {
        $crate::JsonValue::Seq(::std::vec![ $( $crate::value_of(&$v) ),* ])
    };
    ($v:expr) => { $crate::value_of(&$v) };
}

// --------------------------------------------------------------- printing

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 code point.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("-66.0").unwrap(), -66.0);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![(1usize, 2.5f64), (3, 4.0)];
        let json = to_string(&v).unwrap();
        let back: Vec<(usize, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{8}\u{c}\r\u{1}é";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn float_shortest_roundtrip() {
        for f in [0.1, 1.0, -1e300, std::f64::consts::PI, f64::MIN_POSITIVE] {
            let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(back, f);
        }
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({ "a": 1u32, "b": [1u8, 2u8], "c": "x" });
        let text = to_string(&v).unwrap();
        assert_eq!(text, "{\"a\":1,\"b\":[1,2],\"c\":\"x\"}");
        assert_eq!(json!(null), JsonValue::Null);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
    }
}
