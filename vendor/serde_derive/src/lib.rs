//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io dependencies are unavailable in this build
//! environment, so this proc-macro derives the *vendored* `serde`'s
//! value-based `Serialize` / `Deserialize` traits (see `vendor/serde`).
//! It hand-parses the item token stream (no `syn`/`quote`) and supports
//! exactly the shapes this workspace uses:
//!
//! - structs with named fields,
//! - tuple structs (single-field ones serialize as their inner value,
//!   like serde newtypes),
//! - enums with unit, tuple, and struct variants (externally tagged),
//! - `#[serde(transparent)]` and `#[serde(try_from = "T", into = "T")]`.
//!
//! Generics are intentionally unsupported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    try_from: Option<String>,
    into: Option<String>,
}

enum Data {
    Named(Vec<String>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    attrs: ContainerAttrs,
    data: Data,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(e) => compile_error(&e),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = ContainerAttrs::default();

    // Outer attributes (doc comments, #[serde(...)], #[non_exhaustive], …).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    parse_container_attr(&g.stream(), &mut attrs);
                    i += 2;
                } else {
                    return Err("malformed attribute".into());
                }
            }
            _ => break,
        }
    }
    // Visibility.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive: generic type `{name}` is unsupported"
        ));
    }

    let data = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Named(parse_named_fields(&g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Tuple(count_tuple_fields(&g.stream()))
            }
            _ => return Err("unsupported struct body".into()),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(&g.stream())?)
            }
            _ => return Err("expected enum body".into()),
        },
        other => return Err(format!("cannot derive serde traits for `{other}`")),
    };
    Ok(Item { name, attrs, data })
}

fn parse_container_attr(stream: &TokenStream, attrs: &mut ContainerAttrs) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    // Looking for: serde ( ... )
    if tokens.len() != 2 {
        return;
    }
    if !matches!(&tokens[0], TokenTree::Ident(id) if id.to_string() == "serde") {
        return;
    }
    let TokenTree::Group(g) = &tokens[1] else {
        return;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        if let TokenTree::Ident(id) = &inner[j] {
            match id.to_string().as_str() {
                "transparent" => attrs.transparent = true,
                key @ ("try_from" | "into") => {
                    // key = "Type"
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (inner.get(j + 1), inner.get(j + 2))
                    {
                        if eq.as_char() == '=' {
                            let ty = lit.to_string().trim_matches('"').to_string();
                            if key == "try_from" {
                                attrs.try_from = Some(ty);
                            } else {
                                attrs.into = Some(ty);
                            }
                            j += 2;
                        }
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
}

/// Skips attributes and visibility at `*i`, returns `false` at end of input.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    loop {
        match tokens.get(*i) {
            None => return false,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            Some(_) => return true,
        }
    }
}

/// Advances past a type, tracking `<`/`>` nesting, stopping at a top-level
/// comma (consumed) or end of input.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: &TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while skip_attrs_and_vis(&tokens, &mut i) {
        let TokenTree::Ident(id) = &tokens[i] else {
            return Err("expected field name".into());
        };
        fields.push(id.to_string());
        i += 1; // name
        i += 1; // ':'
        skip_type(&tokens, &mut i);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while skip_attrs_and_vis(&tokens, &mut i) {
        count += 1;
        skip_type(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: &TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while skip_attrs_and_vis(&tokens, &mut i) {
        let TokenTree::Ident(id) = &tokens[i] else {
            return Err("expected variant name".into());
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(&g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name, kind });
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into_ty) = &item.attrs.into {
        format!(
            "let __conv: {into_ty} = ::core::convert::From::from(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&__conv)"
        )
    } else {
        match &item.data {
            Data::Named(fields) if item.attrs.transparent && fields.len() == 1 => {
                format!("::serde::Serialize::to_value(&self.{})", fields[0])
            }
            Data::Named(fields) => {
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
            }
            Data::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Data::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                    .collect();
                format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
            }
            Data::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vn = &v.name;
                        match &v.kind {
                            VariantKind::Unit => format!(
                                "{name}::{vn} => ::serde::Value::Str(::std::string::String::from({vn:?}))"
                            ),
                            VariantKind::Tuple(1) => format!(
                                "{name}::{vn}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Serialize::to_value(__f0))])"
                            ),
                            VariantKind::Tuple(n) => {
                                let binds: Vec<String> =
                                    (0..*n).map(|k| format!("__f{k}")).collect();
                                let elems: Vec<String> = (0..*n)
                                    .map(|k| format!("::serde::Serialize::to_value(__f{k})"))
                                    .collect();
                                format!(
                                    "{name}::{vn}({}) => ::serde::Value::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Seq(::std::vec![{}]))])",
                                    binds.join(", "),
                                    elems.join(", ")
                                )
                            }
                            VariantKind::Named(fields) => {
                                let binds = fields.join(", ");
                                let entries: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Map(::std::vec![{}]))])",
                                    entries.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(",\n"))
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(from_ty) = &item.attrs.try_from {
        format!(
            "let __raw: {from_ty} = ::serde::Deserialize::from_value(__v)?;\n\
             ::core::convert::TryFrom::try_from(__raw)\n\
                 .map_err(|__e| ::serde::DeError::custom(&__e))"
        )
    } else {
        match &item.data {
            Data::Named(fields) if item.attrs.transparent && fields.len() == 1 => format!(
                "::core::result::Result::Ok({name} {{ {}: ::serde::Deserialize::from_value(__v)? }})",
                fields[0]
            ),
            Data::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, {f:?}))?"
                        )
                    })
                    .collect();
                format!(
                    "let __m = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", {name:?}))?;\n\
                     ::core::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
            Data::Tuple(1) => format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
            ),
            Data::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                    .collect();
                format!(
                    "let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"seq\", {name:?}))?;\n\
                     if __s.len() != {n} {{ return ::core::result::Result::Err(::serde::DeError::expected(\"{n}-tuple\", {name:?})); }}\n\
                     ::core::result::Result::Ok({name}({}))",
                    inits.join(", ")
                )
            }
            Data::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| matches!(v.kind, VariantKind::Unit))
                    .map(|v| format!("{:?} => ::core::result::Result::Ok({name}::{}),", v.name, v.name))
                    .collect();
                let data_arms: Vec<String> = variants
                    .iter()
                    .filter_map(|v| {
                        let vn = &v.name;
                        match &v.kind {
                            VariantKind::Unit => None,
                            VariantKind::Tuple(1) => Some(format!(
                                "{vn:?} => ::core::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__payload)?)),"
                            )),
                            VariantKind::Tuple(n) => {
                                let inits: Vec<String> = (0..*n)
                                    .map(|k| format!("::serde::Deserialize::from_value(&__s[{k}])?"))
                                    .collect();
                                Some(format!(
                                    "{vn:?} => {{\n\
                                         let __s = __payload.as_seq().ok_or_else(|| ::serde::DeError::expected(\"seq\", {name:?}))?;\n\
                                         if __s.len() != {n} {{ return ::core::result::Result::Err(::serde::DeError::expected(\"{n}-tuple\", {name:?})); }}\n\
                                         ::core::result::Result::Ok({name}::{vn}({}))\n\
                                     }}",
                                    inits.join(", ")
                                ))
                            }
                            VariantKind::Named(fields) => {
                                let inits: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, {f:?}))?"
                                        )
                                    })
                                    .collect();
                                Some(format!(
                                    "{vn:?} => {{\n\
                                         let __m = __payload.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", {name:?}))?;\n\
                                         ::core::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                     }}",
                                    inits.join(", ")
                                ))
                            }
                        }
                    })
                    .collect();
                format!(
                    "match __v {{\n\
                         ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                             {}\n\
                             __other => ::core::result::Result::Err(::serde::DeError::custom(&::std::format!(\"unknown variant {{__other}} of {name}\"))),\n\
                         }},\n\
                         ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                             let (__tag, __payload) = &__entries[0];\n\
                             match __tag.as_str() {{\n\
                                 {}\n\
                                 __other => ::core::result::Result::Err(::serde::DeError::custom(&::std::format!(\"unknown variant {{__other}} of {name}\"))),\n\
                             }}\n\
                         }}\n\
                         _ => ::core::result::Result::Err(::serde::DeError::expected(\"enum value\", {name:?})),\n\
                     }}",
                    unit_arms.join("\n"),
                    data_arms.join("\n")
                )
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
