//! Offline stand-in for `rayon`.
//!
//! Provides the scoped-worker-pool surface this workspace uses —
//! [`scope`], [`Scope::spawn`], [`join`], and [`current_num_threads`] —
//! implemented directly over `std::thread::scope`. There is no global
//! pool or work stealing: each `spawn` is an OS thread, which is the
//! right trade-off for the coarse-grained worker-per-core fan-out the
//! GRAFICS trainers perform.

/// Number of hardware threads available to the process.
#[must_use]
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A scope in which borrowed-data threads can be spawned; all threads are
/// joined before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker inside the scope. The closure receives the scope so
    /// it can spawn further work, mirroring rayon's API.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.0;
        inner.spawn(move || {
            let scope = Scope(inner);
            f(&scope);
        });
    }
}

/// Runs `f` with a [`Scope`]; returns once every spawned worker finished.
/// A panicking worker propagates its panic to the caller.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| {
        let scope = Scope(s);
        f(&scope)
    })
}

/// Runs both closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_workers() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn at_least_one_thread() {
        assert!(current_num_threads() >= 1);
    }
}
