//! Offline stand-in for `crossbeam`: the `scope` API over
//! `std::thread::scope`. Worker panics propagate when the scope joins
//! (instead of surfacing through the returned `Result` as upstream does),
//! which is equivalent for this workspace's `.expect(...)` call sites.

use std::any::Any;

/// Scoped-thread handle able to spawn borrowing workers.
pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker; the closure receives the scope (crossbeam's shape).
    pub fn spawn<F, T>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.0;
        inner.spawn(move || {
            let scope = Scope(inner);
            f(&scope)
        });
    }
}

/// Creates a scope for spawning borrowing threads; all are joined before
/// this returns.
///
/// # Errors
///
/// The `Err` variant exists for API parity and is never produced: a
/// panicking worker re-raises its panic at join instead.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| {
        let scope = Scope(s);
        f(&scope)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_drain_shared_queue() {
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..3 {
                s.spawn(|_| loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= 10 {
                        break;
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        })
        .expect("scope");
        assert_eq!(done.load(Ordering::Relaxed), 10);
    }
}
