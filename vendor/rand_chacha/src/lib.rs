//! Offline stand-in for `rand_chacha`: [`ChaCha8Rng`], a deterministic
//! seedable generator producing the genuine ChaCha8 keystream (DJB's
//! original 64-bit-counter variant). Stream positions are not guaranteed
//! to be bit-compatible with upstream `rand_chacha`, but the generator is
//! a real, statistically strong ChaCha8.
//!
//! Four consecutive blocks are computed per refill with the state words
//! held in 4-lane arrays, giving the compiler four independent dependency
//! chains to schedule (and, with `target-cpu` beyond baseline, straight
//! SIMD) — the keystream is byte-identical to sequential generation, just
//! several times faster. The Hogwild E-LINE trainer drains tens of
//! millions of words per second from this generator, so the block
//! throughput matters.

use rand::{RngCore, SeedableRng};

/// Words buffered per refill (four 16-word ChaCha blocks).
const BUF_WORDS: usize = 64;

/// One u32 of all four in-flight blocks.
type Lane = [u32; 4];

#[inline(always)]
fn add(a: Lane, b: Lane) -> Lane {
    [
        a[0].wrapping_add(b[0]),
        a[1].wrapping_add(b[1]),
        a[2].wrapping_add(b[2]),
        a[3].wrapping_add(b[3]),
    ]
}

#[inline(always)]
fn xor_rotl(a: Lane, b: Lane, r: u32) -> Lane {
    [
        (a[0] ^ b[0]).rotate_left(r),
        (a[1] ^ b[1]).rotate_left(r),
        (a[2] ^ b[2]).rotate_left(r),
        (a[3] ^ b[3]).rotate_left(r),
    ]
}

macro_rules! quarter_round {
    ($a:ident, $b:ident, $c:ident, $d:ident) => {
        $a = add($a, $b);
        $d = xor_rotl($d, $a, 16);
        $c = add($c, $d);
        $b = xor_rotl($b, $c, 12);
        $a = add($a, $b);
        $d = xor_rotl($d, $a, 8);
        $c = add($c, $d);
        $b = xor_rotl($b, $c, 7);
    };
}

/// The ChaCha stream cipher with 8 rounds, exposed as an RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter of the *next* block to compute.
    counter: u64,
    /// Buffered output: four consecutive blocks.
    block: [u32; BUF_WORDS],
    /// Next unread word within `block` (`BUF_WORDS` = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        const C: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let counters: [u64; 4] = [
            self.counter,
            self.counter.wrapping_add(1),
            self.counter.wrapping_add(2),
            self.counter.wrapping_add(3),
        ];
        let splat = |w: u32| -> Lane { [w; 4] };
        let (mut x0, mut x1, mut x2, mut x3) = (splat(C[0]), splat(C[1]), splat(C[2]), splat(C[3]));
        let (mut x4, mut x5, mut x6, mut x7) = (
            splat(self.key[0]),
            splat(self.key[1]),
            splat(self.key[2]),
            splat(self.key[3]),
        );
        let (mut x8, mut x9, mut x10, mut x11) = (
            splat(self.key[4]),
            splat(self.key[5]),
            splat(self.key[6]),
            splat(self.key[7]),
        );
        let lane_lo: Lane = [
            counters[0] as u32,
            counters[1] as u32,
            counters[2] as u32,
            counters[3] as u32,
        ];
        let lane_hi: Lane = [
            (counters[0] >> 32) as u32,
            (counters[1] >> 32) as u32,
            (counters[2] >> 32) as u32,
            (counters[3] >> 32) as u32,
        ];
        let (mut x12, mut x13, mut x14, mut x15) = (lane_lo, lane_hi, splat(0), splat(0));

        for _ in 0..4 {
            // 4 double rounds = 8 rounds.
            quarter_round!(x0, x4, x8, x12);
            quarter_round!(x1, x5, x9, x13);
            quarter_round!(x2, x6, x10, x14);
            quarter_round!(x3, x7, x11, x15);
            quarter_round!(x0, x5, x10, x15);
            quarter_round!(x1, x6, x11, x12);
            quarter_round!(x2, x7, x8, x13);
            quarter_round!(x3, x4, x9, x14);
        }

        let out: [Lane; 16] = [
            add(x0, splat(C[0])),
            add(x1, splat(C[1])),
            add(x2, splat(C[2])),
            add(x3, splat(C[3])),
            add(x4, splat(self.key[0])),
            add(x5, splat(self.key[1])),
            add(x6, splat(self.key[2])),
            add(x7, splat(self.key[3])),
            add(x8, splat(self.key[4])),
            add(x9, splat(self.key[5])),
            add(x10, splat(self.key[6])),
            add(x11, splat(self.key[7])),
            add(x12, lane_lo),
            add(x13, lane_hi),
            x14,
            x15,
        ];
        // Transpose lanes back to sequential block order so the keystream
        // is identical to one-block-at-a-time generation.
        for (word, slot) in out.iter().enumerate() {
            for (lane, &value) in slot.iter().enumerate() {
                self.block[lane * 16 + word] = value;
            }
        }
        self.counter = self.counter.wrapping_add(4);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl ChaCha8Rng {
    /// Fills `out` with the same word sequence `next_u64` would produce,
    /// but drains whole buffered blocks per inner loop instead of paying
    /// the exhaustion branch on every word. Bulk consumers (the Hogwild
    /// trainer's per-worker entropy pool) draw hundreds of words at a
    /// time, where the per-call overhead of `next_u64` is measurable.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        let mut filled = 0;
        while filled < out.len() {
            if self.index >= BUF_WORDS {
                self.refill();
            }
            if self.index + 1 < BUF_WORDS {
                let take = ((BUF_WORDS - self.index) / 2).min(out.len() - filled);
                for k in 0..take {
                    let low = self.block[self.index + 2 * k];
                    let high = self.block[self.index + 2 * k + 1];
                    out[filled + k] = (u64::from(high) << 32) | u64::from(low);
                }
                self.index += 2 * take;
                filled += take;
            } else {
                // A lone buffered word: pair it across the refill boundary
                // exactly like `next_u64` does. This also re-aligns an odd
                // start index, so the fast pair loop resumes next round.
                out[filled] = self.next_u64();
                filled += 1;
            }
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let low = u64::from(self.next_u32());
        let high = u64::from(self.next_u32());
        (high << 32) | low
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

/// ChaCha with 12 rounds — provided for API parity; this stand-in reuses
/// the 8-round core (sufficient for the workspace's simulation needs).
pub type ChaCha12Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    /// Reference single-block scalar ChaCha8 to pin the 4-lane batched
    /// implementation to the exact sequential keystream.
    fn reference_block(key: &[u32; 8], counter: u64) -> [u32; 16] {
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            key[0],
            key[1],
            key[2],
            key[3],
            key[4],
            key[5],
            key[6],
            key[7],
            counter as u32,
            (counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        fn qr(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
            s[a] = s[a].wrapping_add(s[b]);
            s[d] = (s[d] ^ s[a]).rotate_left(16);
            s[c] = s[c].wrapping_add(s[d]);
            s[b] = (s[b] ^ s[c]).rotate_left(12);
            s[a] = s[a].wrapping_add(s[b]);
            s[d] = (s[d] ^ s[a]).rotate_left(8);
            s[c] = s[c].wrapping_add(s[d]);
            s[b] = (s[b] ^ s[c]).rotate_left(7);
        }
        for _ in 0..4 {
            qr(&mut state, 0, 4, 8, 12);
            qr(&mut state, 1, 5, 9, 13);
            qr(&mut state, 2, 6, 10, 14);
            qr(&mut state, 3, 7, 11, 15);
            qr(&mut state, 0, 5, 10, 15);
            qr(&mut state, 1, 6, 11, 12);
            qr(&mut state, 2, 7, 8, 13);
            qr(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        state
    }

    #[test]
    fn batched_stream_matches_sequential_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(2022);
        let key = rng.key;
        for block in 0..8u64 {
            let expected = reference_block(&key, block);
            for &word in &expected {
                assert_eq!(rng.next_u32(), word, "block {block} diverged");
            }
        }
    }

    #[test]
    fn uniformish_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u32().count_ones();
        }
        // 32_000 bits, expect ~16_000 ones.
        assert!((15_200..16_800).contains(&ones), "{ones}");
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_u64_matches_next_u64() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        // Misalign the word index so the odd-offset path is exercised.
        let _ = a.next_u32();
        let _ = b.next_u32();
        let mut buf = [0u64; 100];
        a.fill_u64(&mut buf);
        for (i, &w) in buf.iter().enumerate() {
            assert_eq!(w, b.next_u64(), "word {i}");
        }
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut a = ChaCha8Rng::seed_from_u64(6);
        let mut buf = [0u8; 11];
        a.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
