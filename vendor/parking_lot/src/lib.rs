//! Offline stand-in for `parking_lot`: the `Mutex`/`RwLock` API shape
//! (no poisoning `Result`s) implemented over `std::sync`.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, panicking if a previous holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

/// A reader-writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 6);
    }
}
