//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a drastically simplified — but fully functional — serialization data
//! model that the vendored `serde_json` renders to and from JSON text:
//!
//! - [`Value`] is the self-describing intermediate representation;
//! - [`Serialize`] converts a type *to* a [`Value`];
//! - [`Deserialize`] reconstructs a type *from* a [`Value`].
//!
//! `#[derive(Serialize, Deserialize)]` is re-exported from the vendored
//! `serde_derive` and generates impls of these traits. The public surface
//! intentionally mirrors the names the workspace code imports (`Serialize`,
//! `Deserialize`, derive attributes `transparent` / `try_from` / `into`),
//! not the real serde's visitor architecture.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// Self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer (kept separate so 64-bit MACs round-trip exactly).
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is a sequence.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// String content, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `true` if the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

/// Looks up `key` in an object, yielding `&Value::Null` when absent (so
/// `Option` fields deserialize to `None`).
#[must_use]
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> &'a Value {
    map.iter().find(|(k, _)| k == key).map_or(&NULL, |(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// "expected X while deserializing Y".
    #[must_use]
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// Wraps any displayable error.
    #[must_use]
    pub fn custom(err: &dyn fmt::Display) -> Self {
        DeError(err.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` to the serialization data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `value`; fails with a message naming what was expected.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `value` does not have the expected shape.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Convenience helper: serializes any value (used by `serde_json`'s `json!`).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

// ------------------------------------------------------------- primitives

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value_as_i64(value, stringify!($t))?;
                <$t>::try_from(n).map_err(|e| DeError::custom(&e))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value_as_u64(value, stringify!($t))?;
                <$t>::try_from(n).map_err(|e| DeError::custom(&e))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let n = value_as_i64(value, "isize")?;
        isize::try_from(n).map_err(|e| DeError::custom(&e))
    }
}

fn value_as_i64(value: &Value, ty: &str) -> Result<i64, DeError> {
    match value {
        Value::I64(n) => Ok(*n),
        Value::U64(n) => i64::try_from(*n).map_err(|e| DeError::custom(&e)),
        Value::F64(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Ok(*f as i64),
        _ => Err(DeError::expected("integer", ty)),
    }
}

fn value_as_u64(value: &Value, ty: &str) -> Result<u64, DeError> {
    match value {
        Value::U64(n) => Ok(*n),
        Value::I64(n) => u64::try_from(*n).map_err(|e| DeError::custom(&e)),
        Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 9.0e15 => Ok(*f as u64),
        _ => Err(DeError::expected("unsigned integer", ty)),
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(f) => Ok(*f),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value)
            .map(|f| f as f32)
            .map_err(|_| DeError::expected("number", "f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_seq()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_value(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let seq = value.as_seq().ok_or_else(|| DeError::expected("array", "tuple"))?;
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                if seq.len() != LEN {
                    return Err(DeError::expected("tuple of matching arity", "tuple"));
                }
                Ok(($($t::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

/// Object keys: rendered through [`Value`] so numeric newtypes (MAC
/// addresses, ids) become JSON-compatible string keys.
fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        other => panic!("unsupported map key type: {other:?}"),
    }
}

fn key_from_str(s: &str) -> Value {
    if let Ok(n) = s.parse::<u64>() {
        Value::U64(n)
    } else if let Ok(n) = s.parse::<i64>() {
        Value::I64(n)
    } else {
        Value::Str(s.to_owned())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}
impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::expected("object", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_value(&key_from_str(k))?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_map()
            .ok_or_else(|| DeError::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((K::from_value(&key_from_str(k))?, V::from_value(v)?)))
            .collect()
    }
}
