//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset of the API this workspace uses — [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill`), [`SeedableRng`] with
//! the PCG-based `seed_from_u64` expansion, and
//! [`seq::SliceRandom`] (`shuffle`, `choose`, `choose_multiple`) — over
//! any deterministic generator (the vendored `rand_chacha` provides
//! `ChaCha8Rng`). Sampling algorithms are faithful in spirit (Lemire
//! bounded integers, 53-bit floats) but make no bit-for-bit stream
//! compatibility promise with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 32/64-bit words and byte fill.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Values drawable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Lemire's nearly-divisionless bounded sampling over `[0, n)`, `n >= 1`.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n >= 1);
    let mut x = rng.next_u64();
    let mut m = u128::from(x) * u128::from(n);
    let mut low = m as u64;
    if low < n {
        let threshold = n.wrapping_neg() % n;
        while low < threshold {
            x = rng.next_u64();
            m = u128::from(x) * u128::from(n);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types uniformly samplable over a half-open or closed interval.
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws from `[low, high)` (`inclusive = false`) or `[low, high]`.
    fn sample_interval<R: RngCore + ?Sized>(
        low: Self,
        high: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (high as i128 - low as i128) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (low as i128 + bounded_u64(rng, span + 1) as i128) as $t
                } else {
                    (low as i128 + bounded_u64(rng, span) as i128) as $t
                }
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let unit: $t = Standard::sample(rng);
                let v = low + unit * (high - low);
                if inclusive {
                    if v > high { high } else { v }
                } else if v >= high {
                    // Guard against rounding up to the excluded endpoint.
                    <$t>::midpoint(low, high)
                } else {
                    v
                }
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_interval(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_interval(start, end, true, rng)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` for floats,
    /// uniform over all values for integers/bool).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard::sample(self);
        unit < p
    }

    /// Fills an integer/byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Raw seed type (e.g. `[u8; 32]` for ChaCha).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG-XSH-RR step (the same
    /// scheme rand_core 0.6 uses), then seeds the generator.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            let bytes = word.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Built-in generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The crate's default seedable generator. Upstream backs this with
    /// ChaCha12; the stand-in uses SplitMix64 — statistically fine for
    /// tests, with the usual caveat that no cross-version stream
    /// stability is promised (upstream makes the same caveat).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for chunk in seed.chunks(8) {
                let mut bytes = [0u8; 8];
                bytes[..chunk.len()].copy_from_slice(chunk);
                state ^= u64::from_le_bytes(bytes).rotate_left(17);
                state = state.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            }
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

/// Slice shuffling and sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random helpers on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them if the
        /// slice is shorter).
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` entries are a
            // uniform sample without replacement.
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }
    }

    const _OBJECT_SAFE: fn(&mut dyn RngCore) = |_| {};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — small test generator.
    struct Sm(u64);
    impl RngCore for Sm {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Sm(1);
        for _ in 0..10_000 {
            let a: usize = rng.gen_range(0..7);
            assert!(a < 7);
            let b: i16 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&b));
            let f: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let g: f32 = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&g));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = Sm(7);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 800, "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut rng = Sm(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_multiple_distinct() {
        use seq::SliceRandom;
        let mut rng = Sm(4);
        let pool: Vec<u64> = (0..10).collect();
        let picked: Vec<u64> = pool.choose_multiple(&mut rng, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut d = picked.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 4);
        // Larger than the pool: everything, once.
        assert_eq!(pool.choose_multiple(&mut rng, 99).count(), 10);
    }
}
