//! # GRAFICS — Graph Embedding-based Floor Identification
//!
//! A from-scratch Rust implementation of *GRAFICS: Graph Embedding-based
//! Floor Identification Using Crowdsourced RF Signals* (Zhuo et al.,
//! ICDCS 2022), including every substrate the paper depends on: the
//! bipartite signal graph, the LINE and E-LINE embedding algorithms, the
//! constrained proximity hierarchical clustering, an RF-propagation
//! dataset simulator, the paper's four comparison baselines, and the full
//! evaluation harness.
//!
//! This umbrella crate re-exports the public API of each workspace member.
//!
//! ## Quickstart
//!
//! ```
//! use grafics::prelude::*;
//! use rand::SeedableRng;
//!
//! // Simulate a small three-storey office and a crowdsourced corpus.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let building = BuildingModel::office("demo", 3).with_records_per_floor(60);
//! let dataset = building.simulate(&mut rng);
//!
//! // 70/30 split, 4 labels per floor (the paper's default protocol).
//! let split = dataset.split(0.7, &mut rng).unwrap();
//! let train = split.train.with_label_budget(4, &mut rng);
//!
//! // Offline training.
//! let config = GraficsConfig { epochs: 40, ..GraficsConfig::default() };
//! let model = Grafics::train(&train, &config, &mut rng).unwrap();
//!
//! // Online inference.
//! let mut correct = 0;
//! let mut model = model;
//! for sample in split.test.samples() {
//!     if let Ok(pred) = model.infer(&sample.record, &mut rng) {
//!         if pred.floor == sample.ground_truth {
//!             correct += 1;
//!         }
//!     }
//! }
//! assert!(correct * 10 >= split.test.len() * 8, "expect >=80% accuracy");
//! ```

#![forbid(unsafe_code)]

pub use grafics_baselines as baselines;
pub use grafics_cluster as cluster;
pub use grafics_core as core;
pub use grafics_data as data;
pub use grafics_embed as embed;
pub use grafics_graph as graph;
pub use grafics_metrics as metrics;
pub use grafics_scenario as scenario;
pub use grafics_serve as serve;
pub use grafics_types as types;
pub use grafics_viz as viz;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use grafics_cluster::{ClusterModel, ClusteringConfig};
    pub use grafics_core::{
        FleetManifest, FleetStats, Grafics, GraficsConfig, GraficsFleet, GraficsServer,
        MaintenancePolicy, Prediction, RetentionPolicy, Router, RouterKind, Shard,
    };
    pub use grafics_data::{BuildingModel, FleetPreset};
    pub use grafics_embed::{ElineTrainer, EmbeddingConfig, EmbeddingModel, Objective};
    pub use grafics_graph::{BipartiteGraph, NegativeSampler, WeightFunction};
    pub use grafics_metrics::{ClassificationReport, ConfusionMatrix};
    pub use grafics_serve::{HttpClient, HttpServer, ServeConfig};
    pub use grafics_types::{
        BuildingId, Dataset, FloorId, MacAddr, Reading, RecordId, RowMatrix, Rssi, Sample,
        SignalRecord, Split,
    };
}
