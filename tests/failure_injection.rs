//! Failure-injection tests: the degenerate and adversarial inputs a
//! crowdsourced deployment will eventually see must produce errors or
//! graceful degradation, never panics or silent corruption.

use grafics::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn trained_model(seed: u64) -> (Grafics, BuildingModel, grafics_data::BuildingLayout) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let b = BuildingModel::office("fi", 2).with_records_per_floor(40);
    let layout = b.layout(&mut rng);
    let ds = b
        .simulate_with_layout(&layout, &mut rng)
        .with_label_budget(4, &mut rng);
    let model = Grafics::train(&ds, &GraficsConfig::fast(), &mut rng).unwrap();
    (model, b, layout)
}

#[test]
fn record_with_single_known_mac_is_classified() {
    let (mut model, _, layout) = trained_model(1);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mac = layout.aps[0].mac;
    let rec = SignalRecord::new(vec![Reading::new(mac, Rssi::new(-70.0).unwrap())]).unwrap();
    let pred = model.infer(&rec, &mut rng).unwrap();
    assert!(pred.distance.is_finite());
}

#[test]
fn record_with_extreme_rssi_values() {
    let (mut model, _, layout) = trained_model(2);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let rec = SignalRecord::new(vec![
        Reading::new(layout.aps[0].mac, Rssi::FLOOR),
        Reading::new(layout.aps[1].mac, Rssi::CEIL),
    ])
    .unwrap();
    let pred = model.infer(&rec, &mut rng).unwrap();
    assert!(pred.distance.is_finite());
}

#[test]
fn record_with_thousands_of_unknown_macs_and_one_known() {
    // A hostile or broken scanner reporting a giant record: the one known
    // MAC keeps it in-building; the unknown MACs become fresh nodes; no
    // panic, finite result.
    let (mut model, _, layout) = trained_model(3);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mut readings = vec![Reading::new(layout.aps[0].mac, Rssi::new(-60.0).unwrap())];
    for i in 0..2000u64 {
        readings.push(Reading::new(
            MacAddr::from_u64(0xFFFF_0000 + i),
            Rssi::new(-80.0).unwrap(),
        ));
    }
    let rec = SignalRecord::new(readings).unwrap();
    let macs_before = model.graph().mac_count();
    let pred = model.infer(&rec, &mut rng).unwrap();
    assert!(pred.distance.is_finite());
    assert_eq!(model.graph().mac_count(), macs_before + 2000);
}

#[test]
fn duplicate_macs_collapse_to_strongest() {
    let (mut model, _, layout) = trained_model(4);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let mac = layout.aps[0].mac;
    let rec = SignalRecord::new(vec![
        Reading::new(mac, Rssi::new(-90.0).unwrap()),
        Reading::new(mac, Rssi::new(-50.0).unwrap()),
        Reading::new(mac, Rssi::new(-70.0).unwrap()),
    ])
    .unwrap();
    assert_eq!(rec.len(), 1);
    assert_eq!(rec.readings()[0].rssi.dbm(), -50.0);
    assert!(model.infer(&rec, &mut rng).is_ok());
}

#[test]
fn training_with_all_samples_on_one_floor_and_querying_other() {
    // Degenerate corpus: single-floor training. Any query maps to that
    // floor; no panic, no phantom floors.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let b = BuildingModel::office("fi-one", 1).with_records_per_floor(30);
    let layout = b.layout(&mut rng);
    let ds = b
        .simulate_with_layout(&layout, &mut rng)
        .with_label_budget(2, &mut rng);
    let mut model = Grafics::train(&ds, &GraficsConfig::fast(), &mut rng).unwrap();
    let scan = b.scan(&layout, 0, &mut rng).unwrap();
    assert_eq!(model.infer(&scan, &mut rng).unwrap().floor, FloorId(0));
}

#[test]
fn batch_inference_mixes_failures_and_successes() {
    let (mut model, b, layout) = trained_model(6);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let good = b.scan(&layout, 0, &mut rng).unwrap();
    let foreign = SignalRecord::new(vec![Reading::new(
        MacAddr::from_u64(0xABCD_EF01_2345),
        Rssi::new(-50.0).unwrap(),
    )])
    .unwrap();
    let out = model.infer_batch(&[good.clone(), foreign, good], &mut rng);
    assert_eq!(out.len(), 3);
    assert!(out[0].is_some());
    assert!(out[1].is_none());
    assert!(out[2].is_some());
}

#[test]
fn forgetting_every_online_record_restores_graph_size() {
    let (mut model, b, layout) = trained_model(7);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let before_records = model.graph().record_count();
    let before_edges = model.graph().edge_count();
    let mut rids = Vec::new();
    for i in 0..10 {
        let scan = b.scan(&layout, (i % 2) as i16, &mut rng).unwrap();
        let (rid, _) = model.infer_tracked(&scan, &mut rng).unwrap();
        rids.push(rid);
    }
    for rid in rids {
        model.forget_record(rid).unwrap();
    }
    assert_eq!(model.graph().record_count(), before_records);
    assert_eq!(model.graph().edge_count(), before_edges);
}

#[test]
fn removing_every_ap_then_inferring_fails_cleanly() {
    let (mut model, _b, layout) = trained_model(8);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    for mac in layout.macs() {
        if model.graph().mac_node(mac).is_some() {
            model.remove_ap(mac).unwrap();
        }
    }
    // Hotspot MACs may survive, but a scan of deployed APs now has no
    // overlap -> OutsideBuilding, not a panic.
    let scan_of_deployed = {
        let readings: Vec<Reading> = layout
            .aps
            .iter()
            .take(5)
            .map(|ap| Reading::new(ap.mac, Rssi::new(-60.0).unwrap()))
            .collect();
        SignalRecord::new(readings).unwrap()
    };
    assert!(matches!(
        model.infer(&scan_of_deployed, &mut rng),
        Err(grafics::core::GraficsError::OutsideBuilding)
    ));
}

#[test]
fn zero_width_building_rejected_by_types_not_panic() {
    // A building model with pathological record count still yields a
    // well-formed (possibly small) dataset.
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    let ds = BuildingModel::office("fi-empty", 2)
        .with_records_per_floor(0)
        .simulate(&mut rng);
    assert!(ds.is_empty());
    assert!(matches!(
        Grafics::train(&ds, &GraficsConfig::fast(), &mut rng),
        Err(grafics::core::GraficsError::EmptyTrainingSet)
    ));
}
