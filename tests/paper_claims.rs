//! Tests that pin the paper's qualitative claims (the "expected shapes" of
//! DESIGN.md) at small scale, so regressions in any crate surface as
//! claim violations rather than silent accuracy drift.

use grafics::prelude::*;
use grafics_metrics::ConfusionMatrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn run_with_config(config: &GraficsConfig, labels: usize, seed: u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ds = BuildingModel::mall("claims", 4)
        .with_records_per_floor(70)
        .simulate(&mut rng);
    let split = ds.split(0.7, &mut rng).unwrap();
    let train = split.train.with_label_budget(labels, &mut rng);
    let Ok(mut model) = Grafics::train(&train, config, &mut rng) else {
        return 0.0;
    };
    let mut cm = ConfusionMatrix::new();
    for s in split.test.samples() {
        if let Ok(pred) = model.infer(&s.record, &mut rng) {
            cm.observe(s.ground_truth, pred.floor);
        }
    }
    cm.report().micro_f
}

/// §VI-C / Fig. 13: E-LINE beats LINE second-order at 4 labels per floor.
#[test]
fn claim_eline_beats_line_at_four_labels() {
    let eline: f64 = (0..3)
        .map(|s| run_with_config(&GraficsConfig::default(), 4, 100 + s))
        .sum::<f64>()
        / 3.0;
    let line_cfg = GraficsConfig {
        objective: grafics::embed::Objective::LineSecond,
        ..GraficsConfig::default()
    };
    let line: f64 = (0..3)
        .map(|s| run_with_config(&line_cfg, 4, 100 + s))
        .sum::<f64>()
        / 3.0;
    assert!(
        eline > line,
        "E-LINE ({eline:.3}) should beat LINE-2nd ({line:.3}) at 4 labels/floor"
    );
}

/// §VI-D / Fig. 16: the offset weight function beats the power weight.
#[test]
fn claim_offset_weight_beats_power_weight() {
    let offset = run_with_config(&GraficsConfig::default(), 4, 200);
    let power_cfg = GraficsConfig {
        weight_function: grafics::graph::WeightFunction::Power,
        ..GraficsConfig::default()
    };
    let power = run_with_config(&power_cfg, 4, 200);
    assert!(
        offset > power + 0.1,
        "offset f ({offset:.3}) should clearly beat power g ({power:.3})"
    );
}

/// §VI-D / Fig. 15: accuracy is insensitive to the embedding dimension.
#[test]
fn claim_dimension_insensitivity() {
    let mut scores = Vec::new();
    for dim in [8usize, 32, 128] {
        let cfg = GraficsConfig {
            dim,
            ..GraficsConfig::default()
        };
        let mean: f64 = (0..3)
            .map(|s| run_with_config(&cfg, 4, 300 + s))
            .sum::<f64>()
            / 3.0;
        scores.push(mean);
    }
    let min = scores.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = scores.iter().cloned().fold(0.0f64, f64::max);
    assert!(min > 0.8, "all dims should stay accurate: {scores:?}");
    assert!(
        max - min < 0.15,
        "spread across dims should be small: {scores:?}"
    );
}

/// §VI-B / Fig. 11: labels help, but GRAFICS is already near its ceiling
/// at 4 labels per floor.
///
/// Scored as the median over five seeds: with only four labels per floor
/// an individual run can lose a floor to unlucky label placement (the
/// paper averages over hundreds of buildings), and the claim is about the
/// typical run, not the worst seed.
#[test]
fn claim_four_labels_near_ceiling() {
    let median = |labels: usize| -> f64 {
        let mut scores: Vec<f64> = (0..5)
            .map(|s| run_with_config(&GraficsConfig::default(), labels, 400 + s))
            .collect();
        scores.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        scores[scores.len() / 2]
    };
    let at_4 = median(4);
    let at_40 = median(40);
    assert!(at_4 > 0.82, "4 labels: {at_4:.3}");
    assert!(
        at_40 - at_4 < 0.15,
        "40 labels ({at_40:.3}) adds little over 4 ({at_4:.3})"
    );
}

/// The constrained merge rule matters: without it, accuracy drops.
#[test]
fn claim_constraint_helps() {
    let constrained = run_with_config(&GraficsConfig::default(), 4, 500);
    let uncon_cfg = GraficsConfig {
        constrained_clustering: false,
        ..GraficsConfig::default()
    };
    let unconstrained = run_with_config(&uncon_cfg, 4, 500);
    assert!(
        constrained >= unconstrained - 0.02,
        "constrained ({constrained:.3}) should not lose to unconstrained ({unconstrained:.3})"
    );
}
