//! Tier-1 pin of the network front end: the HTTP server over a fleet
//! answers bit-identically to the in-process serving engine at equal
//! seeds, and the manifest's maintenance cadence publishes absorbed
//! records without any manual `/v1/publish`.

use grafics::prelude::*;
use grafics::serve::BatchBody;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

fn trained() -> (Grafics, Vec<SignalRecord>) {
    let mut rng = ChaCha8Rng::seed_from_u64(61);
    let ds = BuildingModel::office("net", 2)
        .with_records_per_floor(30)
        .simulate(&mut rng);
    let split = ds.split(0.7, &mut rng).unwrap();
    let train = split.train.with_label_budget(4, &mut rng);
    let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
    let queries = split
        .test
        .samples()
        .iter()
        .map(|s| s.record.clone())
        .collect();
    (model, queries)
}

#[test]
fn http_serving_matches_in_process_and_auto_publishes() {
    let (model, queries) = trained();

    // In-process reference on an identical fleet.
    let reference = GraficsFleet::from_model(model.clone()).serve_batch(&queries, 17, 1);

    let mut fleet = GraficsFleet::from_model(model);
    fleet.set_maintenance(MaintenancePolicy {
        publish_after_absorbs: Some(2),
        publish_after_secs: None,
        refresh_every_publishes: None,
        refresh_trigger: None,
    });
    let config = ServeConfig {
        maintenance_tick: Duration::from_millis(25),
        ..ServeConfig::default()
    };
    let server = HttpServer::bind(fleet, "127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // Bit-identical serving across the wire.
    let body = format!(
        "{{\"records\":{},\"seed\":17}}",
        serde_json::to_string(&queries).unwrap()
    );
    let (status, response) = client.post("/v1/infer_batch", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    let batch: BatchBody = serde_json::from_str(&response).unwrap();
    assert_eq!(batch.predictions.len(), reference.len());
    for (i, (wire, local)) in batch.predictions.iter().zip(&reference).enumerate() {
        match (wire, local) {
            (Some(w), Some(l)) => {
                assert_eq!(w.floor, l.floor.0, "record {i}");
                assert_eq!(w.distance.to_bits(), l.distance.to_bits(), "record {i}");
                assert_eq!(
                    w.margin
                        .expect("two-floor shard has a finite margin")
                        .to_bits(),
                    l.margin.to_bits(),
                    "record {i}"
                );
            }
            (None, None) => {}
            _ => panic!("record {i}: HTTP and in-process disagree on serving"),
        }
    }

    // Two absorbs cross the cadence threshold: the daemon publishes with
    // no client publish call.
    let mut accepted = 0;
    for record in &queries {
        let body = format!("{{\"record\":{}}}", serde_json::to_string(record).unwrap());
        let (status, _) = client.post("/v1/absorb", &body).unwrap();
        accepted += u32::from(status == 200);
        if accepted == 2 {
            break;
        }
    }
    assert_eq!(accepted, 2);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = client.get("/v1/stat").unwrap();
        assert_eq!(status, 200);
        let stats: FleetStats = serde_json::from_str(&body).unwrap();
        if stats.shards[0].epoch >= 1 && stats.total_pending() == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "auto-publish cadence never fired: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let report = server.shutdown().unwrap();
    assert!(report.maintenance_publishes >= 1);
}
