//! Cross-crate integration tests: the full offline-train → online-infer
//! pipeline against simulated buildings, exercised through the umbrella
//! `grafics` crate exactly as a downstream user would.

use grafics::prelude::*;
use grafics_metrics::ConfusionMatrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn evaluate(building: BuildingModel, labels: usize, seed: u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ds = building.simulate(&mut rng);
    let split = ds.split(0.7, &mut rng).unwrap();
    let train = split.train.with_label_budget(labels, &mut rng);
    let mut model = Grafics::train(&train, &GraficsConfig::default(), &mut rng).unwrap();
    let mut cm = ConfusionMatrix::new();
    for s in split.test.samples() {
        if let Ok(pred) = model.infer(&s.record, &mut rng) {
            cm.observe(s.ground_truth, pred.floor);
        }
    }
    cm.report().micro_f
}

#[test]
fn office_three_floors_four_labels() {
    let f = evaluate(
        BuildingModel::office("it-office", 3).with_records_per_floor(80),
        4,
        1,
    );
    assert!(f > 0.9, "micro-F {f}");
}

#[test]
fn mall_four_floors_four_labels() {
    let f = evaluate(
        BuildingModel::mall("it-mall", 4).with_records_per_floor(80),
        4,
        2,
    );
    assert!(f > 0.8, "micro-F {f}");
}

#[test]
fn hospital_eight_floors_four_labels() {
    let f = evaluate(
        BuildingModel::hospital("it-hosp", 8).with_records_per_floor(80),
        4,
        3,
    );
    assert!(f > 0.8, "micro-F {f}");
}

#[test]
fn single_label_per_floor_still_works() {
    let f = evaluate(
        BuildingModel::office("it-one", 3).with_records_per_floor(80),
        1,
        4,
    );
    assert!(
        f > 0.6,
        "even one label per floor should be usable, micro-F {f}"
    );
}

#[test]
fn more_labels_never_needed_for_high_accuracy() {
    // The paper's headline: ~4 labels/floor already saturates.
    let f4 = evaluate(
        BuildingModel::office("it-sat", 4).with_records_per_floor(80),
        4,
        5,
    );
    assert!(f4 > 0.9, "4 labels: {f4}");
}

#[test]
fn online_inference_keeps_extending_the_graph() {
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let ds = BuildingModel::office("it-grow", 2)
        .with_records_per_floor(60)
        .simulate(&mut rng);
    let split = ds.split(0.7, &mut rng).unwrap();
    let train = split.train.with_label_budget(4, &mut rng);
    let mut model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
    let before = model.graph().record_count();
    let n = split.test.len().min(10);
    for s in split.test.samples().iter().take(n) {
        model.infer(&s.record, &mut rng).unwrap();
    }
    assert_eq!(model.graph().record_count(), before + n);
}

#[test]
fn dataset_roundtrip_through_jsonl_preserves_pipeline_results() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let ds = BuildingModel::office("it-io", 2)
        .with_records_per_floor(40)
        .simulate(&mut rng);
    let mut buf = Vec::new();
    grafics::data::io::write_jsonl(&ds, &mut buf).unwrap();
    let back = grafics::data::io::read_jsonl(buf.as_slice()).unwrap();
    assert_eq!(back, ds);

    // Same seed ⇒ identical trained behaviour on either copy.
    let mut rng_a = ChaCha8Rng::seed_from_u64(8);
    let mut rng_b = ChaCha8Rng::seed_from_u64(8);
    let train_a = ds.with_label_budget(4, &mut rng_a);
    let train_b = back.with_label_budget(4, &mut rng_b);
    let model_a = Grafics::train(&train_a, &GraficsConfig::fast(), &mut rng_a).unwrap();
    let model_b = Grafics::train(&train_b, &GraficsConfig::fast(), &mut rng_b).unwrap();
    assert_eq!(model_a.virtual_labels(), model_b.virtual_labels());
}

#[test]
fn virtual_labels_mostly_match_ground_truth() {
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let ds = BuildingModel::office("it-virt", 3)
        .with_records_per_floor(60)
        .simulate(&mut rng);
    let train = ds.with_label_budget(4, &mut rng);
    let model = Grafics::train(&train, &GraficsConfig::default(), &mut rng).unwrap();
    let virt = model.virtual_labels();
    let correct = virt
        .iter()
        .zip(train.samples())
        .filter(|(v, s)| **v == s.ground_truth)
        .count();
    assert!(
        correct * 10 >= train.len() * 9,
        "virtual labels {correct}/{} should be ≥90% correct",
        train.len()
    );
}

#[test]
fn outside_building_records_rejected_not_learned() {
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    let ds = BuildingModel::office("it-a", 2)
        .with_records_per_floor(40)
        .simulate(&mut rng);
    let other = BuildingModel::office("it-b", 2)
        .with_records_per_floor(5)
        .simulate(&mut rng);
    let train = ds.with_label_budget(4, &mut rng);
    let mut model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
    let before = model.graph().record_count();
    let mut rejected = 0;
    for s in other.samples() {
        if model.infer(&s.record, &mut rng).is_err() {
            rejected += 1;
        }
    }
    assert_eq!(
        rejected,
        other.len(),
        "foreign-building scans share no MACs"
    );
    assert_eq!(model.graph().record_count(), before);
}

/// GRAFICS out-scores every baseline on a mall, compared by the median
/// micro-F over three seeded runs. Single-seed strict comparisons flake
/// here: the 144-sample test set quantises micro-F in steps of ~0.007,
/// producing exact ties, and at very small corpora (≤60 records/floor) a
/// raw-feature autoencoder can genuinely edge out graph embeddings —
/// the paper's advantage is the crowdsourced-scale regime.
#[test]
fn grafics_beats_every_baseline_on_a_mall() {
    use grafics::baselines::{
        AutoencoderProx, BaselineConfig, FloorClassifier, MatrixProx, MdsProx, Sae, ScalableDnn,
    };
    const METHODS: [&str; 6] = [
        "grafics",
        "scalable-dnn",
        "sae",
        "mds",
        "autoencoder",
        "matrix",
    ];
    let mut scores: Vec<Vec<f64>> = vec![Vec::new(); METHODS.len()];

    for seed in [11u64, 12, 13] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ds = BuildingModel::mall("it-cmp", 4)
            .with_records_per_floor(120)
            .simulate(&mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        let train = split.train.with_label_budget(4, &mut rng);

        let mut g = Grafics::train(&train, &GraficsConfig::default(), &mut rng).unwrap();
        let mut cm = ConfusionMatrix::new();
        for s in split.test.samples() {
            if let Ok(p) = g.infer(&s.record, &mut rng) {
                cm.observe(s.ground_truth, p.floor);
            }
        }
        scores[0].push(cm.report().micro_f);

        let score = |model: &mut dyn FloorClassifier| {
            let mut cm = ConfusionMatrix::new();
            for s in split.test.samples() {
                if let Some(f) = model.predict(&s.record) {
                    cm.observe(s.ground_truth, f);
                }
            }
            cm.report().micro_f
        };
        let cfg = BaselineConfig {
            epochs: 20,
            ..Default::default()
        };
        scores[1].push(score(
            &mut ScalableDnn::train(&train, &cfg, &mut rng).unwrap(),
        ));
        scores[2].push(score(&mut Sae::train(&train, &cfg, &mut rng).unwrap()));
        scores[3].push(score(&mut MdsProx::train(&train, 8, &mut rng).unwrap()));
        scores[4].push(score(
            &mut AutoencoderProx::train(&train, &cfg, &mut rng).unwrap(),
        ));
        scores[5].push(score(&mut MatrixProx::train(&train).unwrap()));
    }

    let median = |xs: &[f64]| -> f64 {
        let mut s = xs.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        s[s.len() / 2]
    };
    let grafics_f = median(&scores[0]);
    for (name, runs) in METHODS.iter().zip(&scores).skip(1) {
        let f = median(runs);
        assert!(
            grafics_f > f,
            "GRAFICS (median {grafics_f:.3}) should beat {name} (median {f:.3}) at 4 labels/floor"
        );
    }
}
